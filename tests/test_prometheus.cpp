// Prometheus text-exposition serializer: golden output from hand-built
// snapshots, name/label escaping, cumulative bucket monotonicity, the
// `+Inf` bucket == `_count` invariant, and `promtool check metrics`-style
// lint rules encoded as assertions.
//
// The serializer is pure (reads a MetricsSnapshot aggregate), so these
// tests run even when CUBISG_OBS=OFF compiles metric *recording* out —
// snapshots here are built by hand, not recorded.
#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace cubisg {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char ch) {
    return std::isalpha(static_cast<unsigned char>(ch)) || ch == '_' ||
           ch == ':';
  };
  auto tail = [&head](char ch) {
    return head(ch) || std::isdigit(static_cast<unsigned char>(ch));
  };
  if (!head(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!tail(name[i])) return false;
  }
  return true;
}

/// One parsed sample line: `name` or `name{labels}` followed by a value.
struct Sample {
  std::string name;    ///< including any _bucket/_sum/_count suffix
  std::string labels;  ///< raw text between braces ("" when absent)
  std::string value;
};

/// promtool-style lint over exposition text.  Asserts (via gtest) that:
///   - every line is a comment or a well-formed sample,
///   - every sample's family has a preceding # TYPE line,
///   - no family is declared twice,
///   - counter sample names end in _total,
///   - histogram buckets are cumulative (monotone non-decreasing in le
///     order as emitted) and the +Inf bucket equals _count.
/// Fills `out` (when given) with the parsed samples for test-specific
/// checks.  Void so gtest ASSERT macros are usable.
void lint_exposition(const std::string& text,
                     std::vector<Sample>* out = nullptr) {
  std::map<std::string, std::string> family_type;  // name -> counter/...
  std::string last_family;
  std::int64_t last_bucket_value = 0;
  bool saw_inf_bucket = false;
  std::int64_t inf_bucket_value = 0;

  for (const std::string& line : split_lines(text)) {
    if (line.empty()) {
      ADD_FAILURE() << "blank line in exposition";
      continue;
    }
    if (line[0] == '#') {
      std::istringstream in(line);
      std::string hash, keyword;
      in >> hash >> keyword;
      if (keyword == "TYPE") {
        std::string name, type;
        in >> name >> type;
        EXPECT_TRUE(valid_metric_name(name)) << line;
        EXPECT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram")
            << line;
        EXPECT_EQ(family_type.count(name), 0u)
            << "family declared twice: " << name;
        family_type[name] = type;
        last_family = name;
        last_bucket_value = 0;
        saw_inf_bucket = false;
      }
      continue;  // other comments are free-form
    }

    // Sample line: name[{labels}] SP value
    Sample s;
    std::size_t i = line.find_first_of("{ ");
    ASSERT_NE(i, std::string::npos) << "malformed sample: " << line;
    s.name = line.substr(0, i);
    EXPECT_TRUE(valid_metric_name(s.name)) << line;
    if (line[i] == '{') {
      const std::size_t close = line.find("\"}", i);
      ASSERT_NE(close, std::string::npos) << "unclosed labels: " << line;
      s.labels = line.substr(i + 1, close + 1 - (i + 1));
      i = close + 2;
      ASSERT_LT(i, line.size()) << line;
      ASSERT_EQ(line[i], ' ') << line;
    }
    s.value = line.substr(i + 1);
    EXPECT_FALSE(s.value.empty()) << line;
    EXPECT_EQ(s.value.find(' '), std::string::npos) << line;

    // Resolve the family: exact name, or name minus a histogram suffix.
    std::string family = s.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t n = std::string(suffix).size();
      if (family_type.count(family) == 0 && family.size() > n &&
          family.compare(family.size() - n, n, suffix) == 0) {
        const std::string base = family.substr(0, family.size() - n);
        if (family_type.count(base) != 0 &&
            family_type[base] == "histogram") {
          family = base;
          break;
        }
      }
    }
    ASSERT_EQ(family_type.count(family), 1u)
        << "sample without # TYPE: " << line;
    EXPECT_EQ(family, last_family)
        << "sample outside its family block: " << line;

    const std::string& type = family_type[family];
    if (type == "counter") {
      EXPECT_TRUE(s.name.size() >= 6 &&
                  s.name.compare(s.name.size() - 6, 6, "_total") == 0)
          << "counter without _total: " << line;
    }
    if (type == "histogram" && s.name == family + "_bucket") {
      const std::int64_t v = std::stoll(s.value);
      EXPECT_GE(v, last_bucket_value)
          << "non-cumulative bucket: " << line;
      last_bucket_value = v;
      if (s.labels.find("le=\"+Inf\"") != std::string::npos) {
        saw_inf_bucket = true;
        inf_bucket_value = v;
      }
    }
    if (type == "histogram" && s.name == family + "_count") {
      EXPECT_TRUE(saw_inf_bucket)
          << "histogram without +Inf bucket: " << family;
      EXPECT_EQ(std::stoll(s.value), inf_bucket_value)
          << "+Inf bucket != _count for " << family;
    }
    if (out != nullptr) out->push_back(std::move(s));
  }
}

obs::MetricsSnapshot example_snapshot() {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"cubis.solves", 3});
  snap.counters.push_back({"simplex.pivots_total", 1234567});
  snap.gauges.push_back({"milp.frontier_open_nodes", 17.0});
  snap.gauges.push_back({"lp.relative_gap", 0.000123456789});
  obs::HistogramSnapshot h;
  h.name = "cubis.solve_seconds";
  h.bounds = {0.001, 0.01, 0.1};
  h.counts = {2, 5, 0, 1};  // last = overflow
  h.count = 8;
  h.sum = 0.475;
  snap.histograms.push_back(h);
  return snap;
}

TEST(Prometheus, GoldenExposition) {
  const std::string text = obs::to_prometheus_text(example_snapshot());
  const char* golden =
      "# TYPE cubis_solves_total counter\n"
      "cubis_solves_total 3\n"
      "# TYPE simplex_pivots_total counter\n"
      "simplex_pivots_total 1234567\n"
      "# TYPE milp_frontier_open_nodes gauge\n"
      "milp_frontier_open_nodes 17\n"
      "# TYPE lp_relative_gap gauge\n"
      "lp_relative_gap 0.000123456789\n"
      "# TYPE cubis_solve_seconds histogram\n"
      "cubis_solve_seconds_bucket{le=\"0.001\"} 2\n"
      "cubis_solve_seconds_bucket{le=\"0.01\"} 7\n"
      "cubis_solve_seconds_bucket{le=\"0.1\"} 7\n"
      "cubis_solve_seconds_bucket{le=\"+Inf\"} 8\n"
      "cubis_solve_seconds_sum 0.475\n"
      "cubis_solve_seconds_count 8\n";
  EXPECT_EQ(text, golden);
  lint_exposition(text);
}

TEST(Prometheus, MetricNameMapping) {
  EXPECT_EQ(obs::prometheus_metric_name("cubis.solves", true),
            "cubis_solves_total");
  // Already-suffixed counters are not double-suffixed.
  EXPECT_EQ(obs::prometheus_metric_name("log.lines_total", true),
            "log_lines_total");
  EXPECT_EQ(obs::prometheus_metric_name("threadpool.queue-depth"),
            "threadpool_queue_depth");
  EXPECT_EQ(obs::prometheus_metric_name("7zip.speed"), "_7zip_speed");
  EXPECT_EQ(obs::prometheus_metric_name("a:b_c9"), "a:b_c9");
  EXPECT_EQ(obs::prometheus_metric_name(""), "_");
  // Multi-byte UTF-8 maps each byte to '_' (2 per é, 1 per space).
  EXPECT_EQ(obs::prometheus_metric_name("m\xc3\xa9tric \xc3\xa9"),
            "m__tric___");
}

TEST(Prometheus, LabelEscaping) {
  EXPECT_EQ(obs::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheus_escape_label("say \"hi\""),
            "say \\\"hi\\\"");
  EXPECT_EQ(obs::prometheus_escape_label("line1\nline2"),
            "line1\\nline2");
  EXPECT_EQ(obs::prometheus_escape_label("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Prometheus, BucketsAreCumulativeAndInfEqualsCount) {
  obs::MetricsSnapshot snap;
  obs::HistogramSnapshot h;
  h.name = "test.latency";
  h.bounds = {1.0, 2.0, 4.0, 8.0};
  h.counts = {3, 0, 7, 2, 11};
  // Deliberately torn `count` (racing writers): exposition must still be
  // self-consistent, deriving _count from the same bucket sum as +Inf.
  h.count = 5;
  h.sum = 99.5;
  snap.histograms.push_back(h);
  const std::string text = obs::to_prometheus_text(snap);
  std::vector<Sample> samples;
  lint_exposition(text, &samples);

  std::vector<std::int64_t> buckets;
  std::int64_t count = -1;
  for (const Sample& s : samples) {
    if (s.name == "test_latency_bucket") {
      buckets.push_back(std::stoll(s.value));
    }
    if (s.name == "test_latency_count") count = std::stoll(s.value);
  }
  ASSERT_EQ(buckets.size(), 5u);  // 4 bounds + Inf
  EXPECT_EQ(buckets, (std::vector<std::int64_t>{3, 3, 10, 12, 23}));
  EXPECT_EQ(count, 23);  // bucket-derived, not the torn field
}

TEST(Prometheus, SpecialSampleValues) {
  obs::MetricsSnapshot snap;
  snap.gauges.push_back(
      {"test.inf", std::numeric_limits<double>::infinity()});
  snap.gauges.push_back(
      {"test.neg_inf", -std::numeric_limits<double>::infinity()});
  snap.gauges.push_back(
      {"test.nan", std::numeric_limits<double>::quiet_NaN()});
  snap.gauges.push_back({"test.big_int", 1e14});
  const std::string text = obs::to_prometheus_text(snap);
  EXPECT_NE(text.find("test_inf +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("test_neg_inf -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("test_nan NaN\n"), std::string::npos);
  EXPECT_NE(text.find("test_big_int 100000000000000\n"),
            std::string::npos);
}

TEST(Prometheus, DuplicateCollapsedFamiliesAreSkipped) {
  obs::MetricsSnapshot snap;
  snap.gauges.push_back({"dup.name", 1.0});
  snap.gauges.push_back({"dup:name", 2.0});  // ':' is valid, distinct
  snap.gauges.push_back({"dup-name", 3.0});  // collapses onto dup_name
  const std::string text = obs::to_prometheus_text(snap);
  EXPECT_NE(text.find("dup_name 1\n"), std::string::npos);
  EXPECT_NE(text.find("dup:name 2\n"), std::string::npos);
  EXPECT_EQ(text.find("dup_name 3"), std::string::npos);
  EXPECT_NE(text.find("# cubisg: skipped \"dup-name\""),
            std::string::npos);
  lint_exposition(text);  // the skip comment keeps output lint-clean
}

TEST(Prometheus, EmptySnapshotIsEmptyText) {
  EXPECT_EQ(obs::to_prometheus_text(obs::MetricsSnapshot{}), "");
}

// Satellite lint: the metric families added by the profiler/flight-
// recorder PR — process self-metrics, the engine queue-wait histogram,
// the slow-solve counter — must serialize promtool-clean.  Hand-built
// snapshot so the check runs fully with CUBISG_OBS=OFF too.
TEST(Prometheus, NewObservabilityFamiliesLintClean) {
  obs::MetricsSnapshot snap;
  snap.gauges.push_back({"process.resident_memory_bytes", 1.5e8});
  snap.gauges.push_back({"process.virtual_memory_bytes", 9.1e8});
  snap.gauges.push_back({"process.cpu_user_seconds", 12.25});
  snap.gauges.push_back({"process.cpu_system_seconds", 0.75});
  snap.gauges.push_back({"process.open_fds", 24.0});
  snap.gauges.push_back({"process.uptime_seconds", 360.5});
  snap.counters.push_back({"engine.slow_solves_total", 2});
  obs::HistogramSnapshot h;
  h.name = "engine.queue_wait_seconds";
  h.bounds = {0.001, 0.01, 0.1};
  h.counts = {3, 2, 1, 0};
  h.count = 6;
  h.sum = 0.05;
  snap.histograms.push_back(h);

  const std::string text = obs::to_prometheus_text(snap);
  std::vector<Sample> samples;
  lint_exposition(text, &samples);

  // Names map to the documented prometheus families, with no accidental
  // double _total suffix on the already-suffixed counter.
  const char* want[] = {
      "process_resident_memory_bytes", "process_virtual_memory_bytes",
      "process_cpu_user_seconds",      "process_cpu_system_seconds",
      "process_open_fds",              "process_uptime_seconds",
      "engine_slow_solves_total",      "engine_queue_wait_seconds_count",
  };
  for (const char* name : want) {
    bool found = false;
    for (const Sample& s : samples) found = found || s.name == name;
    EXPECT_TRUE(found) << "family missing from exposition: " << name;
  }
  EXPECT_EQ(text.find("engine_slow_solves_total_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE engine_queue_wait_seconds histogram"),
            std::string::npos);
}

// Satellite lint: the audit.* families added by the certificate/verifier
// PR must serialize promtool-clean too — counters keep a single _total,
// the residual gauge and verify-latency histogram obey the bucket
// invariants.  Hand-built snapshot so the check runs with CUBISG_OBS=OFF.
TEST(Prometheus, AuditFamiliesLintClean) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"audit.checks_total", 128});
  snap.counters.push_back({"audit.failures_total", 1});
  snap.counters.push_back({"audit.dropped_total", 0});
  snap.gauges.push_back({"audit.max_residual", 3.1e-12});
  obs::HistogramSnapshot h;
  h.name = "audit.verify_seconds";
  h.bounds = {0.0001, 0.001, 0.01, 0.1};
  h.counts = {90, 30, 7, 1, 0};
  h.count = 128;
  h.sum = 0.42;
  snap.histograms.push_back(h);

  const std::string text = obs::to_prometheus_text(snap);
  std::vector<Sample> samples;
  lint_exposition(text, &samples);

  const char* want[] = {
      "audit_checks_total",        "audit_failures_total",
      "audit_dropped_total",       "audit_max_residual",
      "audit_verify_seconds_count",
  };
  for (const char* name : want) {
    bool found = false;
    for (const Sample& s : samples) found = found || s.name == name;
    EXPECT_TRUE(found) << "family missing from exposition: " << name;
  }
  // Already-suffixed counters must not get a second _total.
  EXPECT_EQ(text.find("_total_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE audit_verify_seconds histogram"),
            std::string::npos);
}

TEST(Prometheus, LiveRegistrySnapshotLints) {
#if !CUBISG_OBS_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CUBISG_OBS=OFF)";
#endif
  obs::Registry::global().counter("promtest.events").add(4);
  obs::Registry::global().gauge("promtest.depth").set(2.5);
  obs::Registry::global()
      .histogram("promtest.latency", std::vector<double>{0.5, 1.5})
      .record(1.0);
  const std::string text =
      obs::to_prometheus_text(obs::Registry::global().snapshot());
  std::vector<Sample> samples;
  lint_exposition(text, &samples);
  bool saw_counter = false;
  for (const Sample& s : samples) {
    if (s.name == "promtest_events_total") {
      saw_counter = true;
      EXPECT_EQ(std::stoll(s.value), 4);
    }
  }
  EXPECT_TRUE(saw_counter);
}

}  // namespace
}  // namespace cubisg

// Batch journal: append-only durability records driving `batch --resume`.
// The format must round-trip, tolerate the torn final record a kill -9
// can leave (simulated by the journal-torn-write fault site), survive a
// reopen-after-tear without corrupting the next record, and let later
// records supersede earlier ones for the same tag (a resumed run
// re-records its jobs).
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "behavior/scenario.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "core/registry.hpp"
#include "engine/engine.hpp"
#include "engine/journal.hpp"
#include "engine/process_pool.hpp"
#include "games/generators.hpp"

namespace cubisg::engine {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

struct FaultGuard {
  FaultGuard() { faultinject::disarm_all(); }
  ~FaultGuard() { faultinject::disarm_all(); }
};

const JournalEntry* find(const std::vector<JournalEntry>& entries,
                         const std::string& tag) {
  for (const JournalEntry& e : entries) {
    if (e.tag == tag) return &e;
  }
  return nullptr;
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64("", 0), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Journal, RecordLoadRoundTrip) {
  TempFile tmp("journal_roundtrip.log");
  BatchJournal j;
  std::string err;
  ASSERT_TRUE(j.open(tmp.path, err)) << err;
  ASSERT_TRUE(j.record("runs/a.scn", 0x1111111111111111ull, "ok"));
  ASSERT_TRUE(j.record("runs/with space.scn", 0x2222222222222222ull, "ok"));
  ASSERT_TRUE(j.record("runs/b.scn", 0, "failed"));
  j.close();

  std::vector<JournalEntry> entries;
  std::size_t malformed = 9;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(entries.size(), 3u);
  const JournalEntry* a = find(entries, "runs/a.scn");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->status, "ok");
  EXPECT_EQ(a->digest, 0x1111111111111111ull);
  const JournalEntry* spaced = find(entries, "runs/with space.scn");
  ASSERT_NE(spaced, nullptr) << "tags with spaces must survive";
  EXPECT_EQ(spaced->digest, 0x2222222222222222ull);
  const JournalEntry* b = find(entries, "runs/b.scn");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->status, "failed");
}

TEST(Journal, LaterRecordForSameTagWins) {
  TempFile tmp("journal_rerecord.log");
  BatchJournal j;
  std::string err;
  ASSERT_TRUE(j.open(tmp.path, err)) << err;
  ASSERT_TRUE(j.record("a.scn", 1, "crashed"));
  ASSERT_TRUE(j.record("a.scn", 0xabc, "ok"));
  j.close();

  std::vector<JournalEntry> entries;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, nullptr));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].status, "ok");
  EXPECT_EQ(entries[0].digest, 0xabcull);
}

TEST(Journal, TornFinalRecordToleratedEarlierRecordsSurvive) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "fault hooks compiled out";
  FaultGuard guard;
  TempFile tmp("journal_torn.log");
  BatchJournal j;
  std::string err;
  ASSERT_TRUE(j.open(tmp.path, err)) << err;
  ASSERT_TRUE(j.record("a.scn", 11, "ok"));
  ASSERT_TRUE(j.record("b.scn", 22, "ok"));
  faultinject::arm(faultinject::Site::kJournalTornWrite, /*fire_count=*/1);
  ASSERT_TRUE(j.record("c.scn", 33, "ok"));  // half-written, no newline
  j.close();

  std::vector<JournalEntry> entries;
  std::size_t malformed = 0;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 1u) << "the torn tail must count, not crash";
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_NE(find(entries, "a.scn"), nullptr);
  EXPECT_NE(find(entries, "b.scn"), nullptr);
  EXPECT_EQ(find(entries, "c.scn"), nullptr) << "torn record half-loaded";
}

TEST(Journal, ReopenAfterTearDoesNotCorruptNextRecord) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "fault hooks compiled out";
  FaultGuard guard;
  TempFile tmp("journal_reopen.log");
  std::string err;
  {
    BatchJournal j;
    ASSERT_TRUE(j.open(tmp.path, err)) << err;
    ASSERT_TRUE(j.record("a.scn", 11, "ok"));
    faultinject::arm(faultinject::Site::kJournalTornWrite, 1);
    ASSERT_TRUE(j.record("b.scn", 22, "ok"));  // torn, no newline
    j.close();
  }
  {
    // The resumed run re-records b: open() must terminate the torn line
    // so this record is not glued onto it and lost too.
    BatchJournal j;
    ASSERT_TRUE(j.open(tmp.path, err)) << err;
    ASSERT_TRUE(j.record("b.scn", 22, "ok"));
    j.close();
  }
  std::vector<JournalEntry> entries;
  std::size_t malformed = 0;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 1u);
  const JournalEntry* b = find(entries, "b.scn");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->digest, 22ull);
  EXPECT_EQ(b->status, "ok");
}

TEST(Journal, CorruptCrcAndForeignLinesSkipped) {
  TempFile tmp("journal_corrupt.log");
  {
    BatchJournal j;
    std::string err;
    ASSERT_TRUE(j.open(tmp.path, err)) << err;
    ASSERT_TRUE(j.record("good.scn", 7, "ok"));
    j.close();
  }
  {
    std::ofstream out(tmp.path, std::ios::app);
    out << "done 0000000000000007 ok deadbeef flipped.scn\n";  // bad CRC
    out << "not a journal line at all\n";
    out << "\n";
  }
  std::vector<JournalEntry> entries;
  std::string err;
  std::size_t malformed = 0;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 2u);  // bad CRC + foreign line (blank ignored)
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].tag, "good.scn");
}

TEST(Journal, CacheFieldsRoundTrip) {
  TempFile tmp("journal_cache_fields.log");
  BatchJournal j;
  std::string err;
  ASSERT_TRUE(j.open(tmp.path, err)) << err;
  ASSERT_TRUE(j.record("cold.scn", 0xAAAA, "ok", 0, 0));
  ASSERT_TRUE(j.record("hit.scn", 0xAAAA, "ok", 1, 0));
  ASSERT_TRUE(j.record("warm.scn", 0xBBBB, "ok", 0, 1));
  j.close();

  std::vector<JournalEntry> entries;
  std::size_t malformed = 9;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(entries.size(), 3u);
  const JournalEntry* cold = find(entries, "cold.scn");
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(cold->cache_hits, 0);
  EXPECT_EQ(cold->cache_transplants, 0);
  const JournalEntry* hit = find(entries, "hit.scn");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cache_hits, 1);
  EXPECT_EQ(hit->cache_transplants, 0);
  const JournalEntry* warm = find(entries, "warm.scn");
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(warm->cache_hits, 0);
  EXPECT_EQ(warm->cache_transplants, 1);
}

// Resuming a v1 journal with a v2 binary appends v2 records to the same
// file.  load() must round-trip the mix: v1 lines parse with zero cache
// fields, v2 lines with theirs, and later records still win per tag.
TEST(Journal, MixedV1AndV2LinesLoadTogether) {
  TempFile tmp("journal_mixed_versions.log");
  {
    // Hand-written v1 journal (header + one record, CRC computed with
    // the same FNV-1a 32 the v1 writer used).
    const auto crc32 = [](const std::string& s) {
      std::uint32_t h = 2166136261u;
      for (unsigned char c : s) {
        h ^= c;
        h *= 16777619u;
      }
      return h;
    };
    const std::string digest_hex = "00000000000000ab";
    char crc_hex[9];
    std::snprintf(crc_hex, sizeof crc_hex, "%08x",
                  crc32(digest_hex + " ok old.scn"));
    std::ofstream out(tmp.path);
    out << "cubisg-journal 1\n";
    out << "done " << digest_hex << " ok " << crc_hex << " old.scn\n";
    std::snprintf(crc_hex, sizeof crc_hex, "%08x",
                  crc32(digest_hex + " crashed rerun.scn"));
    out << "done " << digest_hex << " crashed " << crc_hex
        << " rerun.scn\n";
  }
  {
    // The resumed (v2) run appends its records to the v1 file.
    BatchJournal j;
    std::string err;
    ASSERT_TRUE(j.open(tmp.path, err)) << err;
    ASSERT_TRUE(j.record("new.scn", 0xCD, "ok", 1, 0));
    ASSERT_TRUE(j.record("rerun.scn", 0xEF, "ok", 0, 1));
    j.close();
  }
  std::vector<JournalEntry> entries;
  std::string err;
  std::size_t malformed = 9;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(entries.size(), 3u);
  const JournalEntry* old = find(entries, "old.scn");
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(old->status, "ok");
  EXPECT_EQ(old->digest, 0xabull);
  EXPECT_EQ(old->cache_hits, 0) << "v1 records load with zero cache fields";
  const JournalEntry* fresh = find(entries, "new.scn");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->cache_hits, 1);
  const JournalEntry* rerun = find(entries, "rerun.scn");
  ASSERT_NE(rerun, nullptr);
  EXPECT_EQ(rerun->status, "ok") << "later v2 record supersedes the v1 one";
  EXPECT_EQ(rerun->digest, 0xefull);
  EXPECT_EQ(rerun->cache_transplants, 1);
}

// --resume regression: a cache-served job must journal under the NEW
// job's identity with the same canonical digest a cold solve records.
// If the engine returned the cached outcome un-restamped (the donor
// job's id, its wall clock and telemetry), a resumed run would either
// re-solve needlessly on a digest mismatch or — worse — skip a job whose
// recorded digest never matched a real solve of it.
TEST(Journal, CacheServedJobsJournalWithFreshIdentityAndColdDigest) {
  Rng rng(9001);
  auto scenario = std::make_shared<behavior::Scenario>(behavior::Scenario{
      games::random_uncertain_game(rng, 10, 3.0, 1.0),
      behavior::SuqrWeightIntervals{}, behavior::IntervalMode::kExactBox});
  auto bounds = std::make_shared<behavior::SuqrIntervalBounds>(
      scenario->make_bounds());
  std::shared_ptr<const games::SecurityGame> game(scenario,
                                                  &scenario->game.game);
  const auto job = [&] {
    SolveJob j;
    j.game = game;
    j.bounds = bounds;
    j.scenario = scenario;
    j.tag = "job.scn";
    return j;
  };
  const auto canonical_digest = [](const core::DefenderSolution& sol) {
    ResultFrame frame;
    frame.id = 0;
    frame.solution = sol;
    frame.solution.wall_seconds = 0.0;
    frame.solution.telemetry = {};
    const std::string bytes = encode_result(frame);
    return fnv1a64(bytes.data(), bytes.size());
  };

  core::SolverSpec spec;
  spec.segments = 6;
  spec.epsilon = 1e-2;
  EngineOptions eopt;
  eopt.workers = 1;
  eopt.cache.mode = CacheMode::kExact;
  eopt.cache.solver_config = core::canonical_solver_config(spec);
  SolveEngine eng(core::make_solver(spec), eopt);
  const JobOutcome cold = eng.submit(job()).get();
  const JobOutcome cached = eng.submit(job()).get();
  eng.shutdown();
  ASSERT_EQ(cold.status, JobStatus::kCompleted) << cold.error;
  ASSERT_EQ(cached.status, JobStatus::kCompleted) << cached.error;
  ASSERT_TRUE(cached.cache_hit);
  EXPECT_NE(cached.id, cold.id)
      << "the cached outcome resurfaced under the donor job's id";

  // Journal both runs the way the batch loop does; the resumed load must
  // see one entry whose digest matches the cold solve's canonical bytes.
  TempFile tmp("journal_cache_digest.log");
  {
    BatchJournal j;
    std::string err;
    ASSERT_TRUE(j.open(tmp.path, err)) << err;
    ASSERT_TRUE(j.record(cold.tag, canonical_digest(cold.solution), "ok",
                         0, 0));
    ASSERT_TRUE(j.record(cached.tag, canonical_digest(cached.solution),
                         "ok", 1, 0));
    j.close();
  }
  std::vector<JournalEntry> entries;
  std::string err;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, nullptr));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].digest, canonical_digest(cold.solution))
      << "cache involvement must not change the canonical digest";
  EXPECT_EQ(entries[0].cache_hits, 1);
}

TEST(Journal, MissingFileIsLoadErrorNotCrash) {
  std::vector<JournalEntry> entries;
  std::string err;
  EXPECT_FALSE(
      BatchJournal::load("/nonexistent/journal.log", entries, err, nullptr));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace cubisg::engine

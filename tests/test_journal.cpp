// Batch journal: append-only durability records driving `batch --resume`.
// The format must round-trip, tolerate the torn final record a kill -9
// can leave (simulated by the journal-torn-write fault site), survive a
// reopen-after-tear without corrupting the next record, and let later
// records supersede earlier ones for the same tag (a resumed run
// re-records its jobs).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_inject.hpp"
#include "engine/journal.hpp"

namespace cubisg::engine {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

struct FaultGuard {
  FaultGuard() { faultinject::disarm_all(); }
  ~FaultGuard() { faultinject::disarm_all(); }
};

const JournalEntry* find(const std::vector<JournalEntry>& entries,
                         const std::string& tag) {
  for (const JournalEntry& e : entries) {
    if (e.tag == tag) return &e;
  }
  return nullptr;
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64("", 0), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Journal, RecordLoadRoundTrip) {
  TempFile tmp("journal_roundtrip.log");
  BatchJournal j;
  std::string err;
  ASSERT_TRUE(j.open(tmp.path, err)) << err;
  ASSERT_TRUE(j.record("runs/a.scn", 0x1111111111111111ull, "ok"));
  ASSERT_TRUE(j.record("runs/with space.scn", 0x2222222222222222ull, "ok"));
  ASSERT_TRUE(j.record("runs/b.scn", 0, "failed"));
  j.close();

  std::vector<JournalEntry> entries;
  std::size_t malformed = 9;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(entries.size(), 3u);
  const JournalEntry* a = find(entries, "runs/a.scn");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->status, "ok");
  EXPECT_EQ(a->digest, 0x1111111111111111ull);
  const JournalEntry* spaced = find(entries, "runs/with space.scn");
  ASSERT_NE(spaced, nullptr) << "tags with spaces must survive";
  EXPECT_EQ(spaced->digest, 0x2222222222222222ull);
  const JournalEntry* b = find(entries, "runs/b.scn");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->status, "failed");
}

TEST(Journal, LaterRecordForSameTagWins) {
  TempFile tmp("journal_rerecord.log");
  BatchJournal j;
  std::string err;
  ASSERT_TRUE(j.open(tmp.path, err)) << err;
  ASSERT_TRUE(j.record("a.scn", 1, "crashed"));
  ASSERT_TRUE(j.record("a.scn", 0xabc, "ok"));
  j.close();

  std::vector<JournalEntry> entries;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, nullptr));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].status, "ok");
  EXPECT_EQ(entries[0].digest, 0xabcull);
}

TEST(Journal, TornFinalRecordToleratedEarlierRecordsSurvive) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "fault hooks compiled out";
  FaultGuard guard;
  TempFile tmp("journal_torn.log");
  BatchJournal j;
  std::string err;
  ASSERT_TRUE(j.open(tmp.path, err)) << err;
  ASSERT_TRUE(j.record("a.scn", 11, "ok"));
  ASSERT_TRUE(j.record("b.scn", 22, "ok"));
  faultinject::arm(faultinject::Site::kJournalTornWrite, /*fire_count=*/1);
  ASSERT_TRUE(j.record("c.scn", 33, "ok"));  // half-written, no newline
  j.close();

  std::vector<JournalEntry> entries;
  std::size_t malformed = 0;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 1u) << "the torn tail must count, not crash";
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_NE(find(entries, "a.scn"), nullptr);
  EXPECT_NE(find(entries, "b.scn"), nullptr);
  EXPECT_EQ(find(entries, "c.scn"), nullptr) << "torn record half-loaded";
}

TEST(Journal, ReopenAfterTearDoesNotCorruptNextRecord) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "fault hooks compiled out";
  FaultGuard guard;
  TempFile tmp("journal_reopen.log");
  std::string err;
  {
    BatchJournal j;
    ASSERT_TRUE(j.open(tmp.path, err)) << err;
    ASSERT_TRUE(j.record("a.scn", 11, "ok"));
    faultinject::arm(faultinject::Site::kJournalTornWrite, 1);
    ASSERT_TRUE(j.record("b.scn", 22, "ok"));  // torn, no newline
    j.close();
  }
  {
    // The resumed run re-records b: open() must terminate the torn line
    // so this record is not glued onto it and lost too.
    BatchJournal j;
    ASSERT_TRUE(j.open(tmp.path, err)) << err;
    ASSERT_TRUE(j.record("b.scn", 22, "ok"));
    j.close();
  }
  std::vector<JournalEntry> entries;
  std::size_t malformed = 0;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 1u);
  const JournalEntry* b = find(entries, "b.scn");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->digest, 22ull);
  EXPECT_EQ(b->status, "ok");
}

TEST(Journal, CorruptCrcAndForeignLinesSkipped) {
  TempFile tmp("journal_corrupt.log");
  {
    BatchJournal j;
    std::string err;
    ASSERT_TRUE(j.open(tmp.path, err)) << err;
    ASSERT_TRUE(j.record("good.scn", 7, "ok"));
    j.close();
  }
  {
    std::ofstream out(tmp.path, std::ios::app);
    out << "done 0000000000000007 ok deadbeef flipped.scn\n";  // bad CRC
    out << "not a journal line at all\n";
    out << "\n";
  }
  std::vector<JournalEntry> entries;
  std::string err;
  std::size_t malformed = 0;
  ASSERT_TRUE(BatchJournal::load(tmp.path, entries, err, &malformed)) << err;
  EXPECT_EQ(malformed, 2u);  // bad CRC + foreign line (blank ignored)
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].tag, "good.scn");
}

TEST(Journal, MissingFileIsLoadErrorNotCrash) {
  std::vector<JournalEntry> entries;
  std::string err;
  EXPECT_FALSE(
      BatchJournal::load("/nonexistent/journal.log", entries, err, nullptr));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace cubisg::engine

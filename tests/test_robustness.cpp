// Resilience-layer tests: SolveBudget semantics, the deterministic
// fault-injection hooks, graceful degradation of every pipeline layer
// (simplex pivots -> B&B nodes -> CUBIS rounds), the numeric-failure
// recovery ladder, degenerate inputs and malformed model files.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "common/budget.hpp"
#include "common/errors.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/cubis.hpp"
#include "games/generators.hpp"
#include "lp/io.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace cubisg {
namespace {

using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

/// Disarms every fault site on scope exit so one test cannot leak an
/// armed fault into the next.
struct FaultGuard {
  FaultGuard() { faultinject::disarm_all(); }
  ~FaultGuard() { faultinject::disarm_all(); }
};

struct Fixture {
  games::UncertainGame ug;
  SuqrIntervalBounds bounds;
  Fixture(std::uint64_t seed, std::size_t t, double r, double width)
      : ug(make(seed, t, r, width)),
        bounds(SuqrWeightIntervals{}, ug.attacker_intervals) {}
  static games::UncertainGame make(std::uint64_t seed, std::size_t t,
                                   double r, double width) {
    Rng rng(seed);
    return games::random_uncertain_game(rng, t, r, width);
  }
  core::SolveContext ctx(const SolveBudget* budget = nullptr) const {
    return core::SolveContext{ug.game, bounds, budget};
  }
};

/// The paper-faithful small LP used to drive simplex through the
/// budget/recovery paths: max 3x + 5y with three <= rows.
lp::Model textbook_lp() {
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  const int x = m.add_col("x", 0.0, lp::kInf, 3.0);
  const int y = m.add_col("y", 0.0, lp::kInf, 5.0);
  int r0 = m.add_row("r0", lp::Sense::kLe, 4.0);
  m.set_coeff(r0, x, 1.0);
  int r1 = m.add_row("r1", lp::Sense::kLe, 12.0);
  m.set_coeff(r1, y, 2.0);
  int r2 = m.add_row("r2", lp::Sense::kLe, 18.0);
  m.set_coeff(r2, x, 3.0);
  m.set_coeff(r2, y, 2.0);
  return m;
}

/// Small knapsack MILP: max sum v_j z_j subject to sum w_j z_j <= 10.
lp::Model knapsack_milp() {
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  const double v[] = {6, 5, 4, 3, 2, 7};
  const double w[] = {5, 4, 3, 2, 1, 6};
  const int row = m.add_row("cap", lp::Sense::kLe, 10.0);
  for (int j = 0; j < 6; ++j) {
    const int z = m.add_col("z" + std::to_string(j), 0.0, 1.0, v[j]);
    m.set_integer(z);
    m.set_coeff(row, z, w[j]);
  }
  return m;
}

// ---- SolveBudget unit semantics ---------------------------------------

TEST(SolveBudget, UnarmedNeverTrips) {
  SolveBudget b;
  EXPECT_FALSE(b.exceeded().has_value());
  EXPECT_TRUE(b.ok());
  EXPECT_FALSE(b.has_deadline());
  EXPECT_TRUE(std::isinf(b.remaining_seconds()));
}

TEST(SolveBudget, ExpiredDeadlineTripsAndLatches) {
  SolveBudget b;
  b.set_deadline_after(-1.0);  // already past
  auto stop = b.exceeded();
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(*stop, SolverStatus::kDeadlineExceeded);
  // Sticky: a later cancellation cannot change the latched verdict, so
  // every concurrently-unwinding layer reports the same reason.
  b.request_cancel();
  EXPECT_EQ(*b.exceeded(), SolverStatus::kDeadlineExceeded);
}

TEST(SolveBudget, CancellationWinsWhenFirst) {
  SolveBudget b;
  b.request_cancel();
  ASSERT_TRUE(b.exceeded().has_value());
  EXPECT_EQ(*b.exceeded(), SolverStatus::kCancelled);
  EXPECT_TRUE(b.cancel_requested());
}

TEST(SolveBudget, NodeAndIterationCapsTripAsIterLimit) {
  SolveBudget b;
  b.set_node_limit(5);
  b.charge_nodes(4);
  EXPECT_FALSE(b.exceeded().has_value());
  b.charge_nodes(1);
  ASSERT_TRUE(b.exceeded().has_value());
  EXPECT_EQ(*b.exceeded(), SolverStatus::kIterLimit);

  SolveBudget b2;
  b2.set_iteration_limit(3);
  b2.charge_iterations(3);
  ASSERT_TRUE(b2.exceeded().has_value());
  EXPECT_EQ(*b2.exceeded(), SolverStatus::kIterLimit);
}

TEST(SolveBudget, ResetRearmsForServeLoopReuse) {
  SolveBudget b;
  b.set_deadline_after(-1.0);
  b.request_cancel();
  ASSERT_TRUE(b.exceeded().has_value());
  b.reset();
  EXPECT_FALSE(b.exceeded().has_value());
  EXPECT_FALSE(b.has_deadline());
  EXPECT_EQ(b.nodes_charged(), 0);
  EXPECT_DOUBLE_EQ(b.deadline_seconds(), 0.0);
}

TEST(SolveBudget, RemainingSecondsTracksDeadline) {
  SolveBudget b;
  b.set_deadline_after(30.0);
  EXPECT_TRUE(b.has_deadline());
  EXPECT_GT(b.remaining_seconds(), 25.0);
  EXPECT_LE(b.remaining_seconds(), 30.0);
  EXPECT_DOUBLE_EQ(b.deadline_seconds(), 30.0);
}

// ---- fault-injection hook ---------------------------------------------

TEST(FaultInject, FireCountAndSkipWindows) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  const auto site = faultinject::Site::kLuFactorize;
  faultinject::arm(site, /*fire_count=*/2, /*skip=*/1);
  EXPECT_FALSE(faultinject::should_fail(site));  // skipped
  EXPECT_TRUE(faultinject::should_fail(site));
  EXPECT_TRUE(faultinject::should_fail(site));
  EXPECT_FALSE(faultinject::should_fail(site));  // window exhausted
  EXPECT_EQ(faultinject::fire_count(site), 2);
}

TEST(FaultInject, DisarmStopsFiring) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  const auto site = faultinject::Site::kModelIo;
  faultinject::arm(site, -1);  // forever
  EXPECT_TRUE(faultinject::should_fail(site));
  faultinject::disarm(site);
  EXPECT_FALSE(faultinject::should_fail(site));
}

TEST(FaultInject, UnarmedSitesNeverFire) {
  FaultGuard guard;
  for (int i = 0; i < static_cast<int>(faultinject::Site::kCount); ++i) {
    EXPECT_FALSE(faultinject::should_fail(static_cast<faultinject::Site>(i)));
  }
}

TEST(FaultInject, ArmFromEnvParsesSpec) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  ::setenv("CUBISG_FAULT_INJECT", "model-io:2,cubis-deadline:1:1", 1);
  faultinject::arm_from_env();
  ::unsetenv("CUBISG_FAULT_INJECT");
  EXPECT_TRUE(faultinject::should_fail(faultinject::Site::kModelIo));
  EXPECT_TRUE(faultinject::should_fail(faultinject::Site::kModelIo));
  EXPECT_FALSE(faultinject::should_fail(faultinject::Site::kModelIo));
  // cubis-deadline: one skip, then one fire.
  EXPECT_FALSE(faultinject::should_fail(faultinject::Site::kCubisDeadline));
  EXPECT_TRUE(faultinject::should_fail(faultinject::Site::kCubisDeadline));
}

TEST(FaultInject, SiteNamesAreStable) {
  EXPECT_STREQ(faultinject::site_name(faultinject::Site::kLuFactorize),
               "lu-factorize");
  EXPECT_STREQ(faultinject::site_name(faultinject::Site::kPoolSubmit),
               "pool-submit");
}

// ---- simplex: budget stop + recovery ladder ----------------------------

TEST(SimplexBudget, ExpiredDeadlineReturnsTypedStatus) {
  SolveBudget budget;
  budget.set_deadline_after(-1.0);
  lp::SimplexOptions opt;
  opt.budget = &budget;
  lp::LpSolution s = lp::solve_lp(textbook_lp(), opt);
  EXPECT_EQ(s.status, SolverStatus::kDeadlineExceeded);
}

TEST(SimplexBudget, CancellationReturnsTypedStatus) {
  SolveBudget budget;
  budget.request_cancel();
  lp::SimplexOptions opt;
  opt.budget = &budget;
  lp::LpSolution s = lp::solve_lp(textbook_lp(), opt);
  EXPECT_EQ(s.status, SolverStatus::kCancelled);
}

TEST(SimplexBudget, IterationsAreChargedToTheToken) {
  SolveBudget budget;
  lp::SimplexOptions opt;
  opt.budget = &budget;
  lp::LpSolution s = lp::solve_lp(textbook_lp(), opt);
  ASSERT_TRUE(s.optimal());
  EXPECT_EQ(budget.iterations_charged(), s.iterations);
}

TEST(SimplexRecovery, TransientSingularFactorizationRecovers) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  obs::Counter& retries =
      obs::Registry::global().counter("solve.numeric_retries_total");
  const std::int64_t before = retries.value();
  // Three fires exhaust the in-solver soft restarts; the recovery ladder's
  // first rung (Bland + refactorize-every-pivot) then runs clean.
  faultinject::arm(faultinject::Site::kLuFactorize, 3);
  lp::LpSolution s = lp::solve_lp(textbook_lp());
  EXPECT_TRUE(s.optimal()) << to_string(s.status);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_GE(retries.value() - before, 1);
}

TEST(SimplexRecovery, PersistentSingularityDegradesToTypedStatus) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  faultinject::arm(faultinject::Site::kLuFactorize, -1);  // every attempt
  lp::LpSolution s;
  EXPECT_NO_THROW(s = lp::solve_lp(textbook_lp()));
  EXPECT_EQ(s.status, SolverStatus::kNumericalIssue);
}

TEST(SimplexFault, InjectedDeadlineAtPivotCheckpoint) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  faultinject::arm(faultinject::Site::kSimplexDeadline, -1);
  lp::LpSolution s = lp::solve_lp(textbook_lp());
  EXPECT_EQ(s.status, SolverStatus::kDeadlineExceeded);
}

// ---- branch and bound: budget stop -------------------------------------

TEST(MilpBudget, ExpiredDeadlineUnwindsWithBoundBookkeeping) {
  SolveBudget budget;
  budget.set_deadline_after(-1.0);
  milp::MilpOptions opt;
  opt.budget = &budget;
  milp::MilpSolution s = milp::solve_milp(knapsack_milp(), opt);
  EXPECT_EQ(s.status, SolverStatus::kDeadlineExceeded);
}

TEST(MilpBudget, NodeCapTripsViaSharedToken) {
  SolveBudget budget;
  budget.set_node_limit(1);
  milp::MilpOptions opt;
  opt.budget = &budget;
  milp::MilpSolution s = milp::solve_milp(knapsack_milp(), opt);
  EXPECT_EQ(s.status, SolverStatus::kIterLimit);
  EXPECT_GE(budget.nodes_charged(), 1);
}

TEST(MilpBudget, UnbudgetedSolveStillOptimal) {
  milp::MilpSolution s = milp::solve_milp(knapsack_milp());
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 14.0, 1e-6);  // {z1,z2,z3,z4}: weight 10, value 14
}

TEST(MilpFault, InjectedDeadlineAtNodeCheckpoint) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  faultinject::arm(faultinject::Site::kMilpDeadline, -1);
  milp::MilpSolution s = milp::solve_milp(knapsack_milp());
  EXPECT_EQ(s.status, SolverStatus::kDeadlineExceeded);
}

TEST(MilpFault, ParallelWorkersAgreeOnInjectedDeadline) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  faultinject::arm(faultinject::Site::kMilpDeadline, -1);
  milp::MilpOptions opt;
  opt.num_workers = 4;
  milp::MilpSolution s = milp::solve_milp(knapsack_milp(), opt);
  EXPECT_EQ(s.status, SolverStatus::kDeadlineExceeded);
}

// ---- CUBIS: graceful degradation ---------------------------------------

TEST(CubisBudget, ExpiredDeadlineReturnsIncumbentAndBracket) {
  Fixture f(21, 6, 2.0, 1.0);
  SolveBudget budget;
  budget.set_deadline_after(-1.0);
  core::CubisSolver solver;
  core::DefenderSolution sol = solver.solve(f.ctx(&budget));
  EXPECT_EQ(sol.status, SolverStatus::kDeadlineExceeded);
  EXPECT_FALSE(sol.ok());
  // Degraded, not empty: the uniform fallback incumbent and the trivial
  // payoff-range bracket are still a certified answer.
  ASSERT_EQ(sol.strategy.size(), 6u);
  EXPECT_LE(sol.lb, sol.ub);
  double total = 0.0;
  for (double xi : sol.strategy) {
    EXPECT_GE(xi, -1e-12);
    EXPECT_LE(xi, 1.0 + 1e-12);
    total += xi;
  }
  EXPECT_LE(total, 2.0 + 1e-9);
}

TEST(CubisBudget, CancellationReturnsIncumbent) {
  Fixture f(22, 6, 2.0, 1.0);
  SolveBudget budget;
  budget.request_cancel();
  core::CubisSolver solver;
  core::DefenderSolution sol = solver.solve(f.ctx(&budget));
  EXPECT_EQ(sol.status, SolverStatus::kCancelled);
  EXPECT_EQ(sol.strategy.size(), 6u);
}

TEST(CubisBudget, DeadlineBoundedSolveReturnsWithinBudgetPlusGrace) {
  // A deliberately heavy instance (many targets, fine grid, epsilon far
  // below reachability) so the deadline must trip mid-search.
  Fixture f(23, 200, 60.0, 1.5);
  core::CubisOptions opt;
  opt.segments = 40;
  opt.epsilon = 1e-12;
  SolveBudget budget;
  const double deadline_sec = 0.15;
  budget.set_deadline_after(deadline_sec);
  Timer timer;
  core::DefenderSolution sol = core::CubisSolver(opt).solve(f.ctx(&budget));
  const double wall = timer.seconds();
  EXPECT_EQ(sol.status, SolverStatus::kDeadlineExceeded);
  // Grace = one binary-search round on this instance (the DP steps are
  // not internally interruptible) plus top-up/eval; generous CI margin.
  EXPECT_LT(wall, deadline_sec + 5.0);
  // The incumbent is feasible and the bracket is sane.
  ASSERT_EQ(sol.strategy.size(), 200u);
  double total = 0.0;
  for (double xi : sol.strategy) {
    EXPECT_GE(xi, -1e-12);
    EXPECT_LE(xi, 1.0 + 1e-12);
    total += xi;
  }
  EXPECT_LE(total, 60.0 + 1e-6);
  EXPECT_LE(sol.lb, sol.ub);
  EXPECT_GT(sol.ub - sol.lb, opt.epsilon);  // genuinely unconverged
}

TEST(CubisBudget, InterruptedBracketContainsTheTrueThreshold) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  Fixture f(24, 6, 2.0, 1.0);
  core::CubisOptions opt;
  opt.segments = 12;
  opt.epsilon = 1e-4;
  // Reference: the converged bracket.
  core::DefenderSolution full = core::CubisSolver(opt).solve(f.ctx());
  ASSERT_TRUE(full.ok());
  // Interrupted run: the injected deadline fires at the start of round 3.
  FaultGuard guard;
  faultinject::arm(faultinject::Site::kCubisDeadline, 1, /*skip=*/2);
  core::DefenderSolution cut = core::CubisSolver(opt).solve(f.ctx());
  EXPECT_EQ(cut.status, SolverStatus::kDeadlineExceeded);
  // Monotonicity: every partial-round verdict stays valid, so the wide
  // bracket must contain the converged one.
  EXPECT_LE(cut.lb, full.lb + 1e-9);
  EXPECT_GE(cut.ub, full.ub - 1e-9);
  EXPECT_GE(full.lb, cut.lb - 1e-9);
}

TEST(CubisFault, ForcedInfeasibleStepReportsInfeasible) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  faultinject::arm(faultinject::Site::kCubisStepInfeasible, -1);
  Fixture f(25, 5, 2.0, 1.0);
  core::DefenderSolution sol;
  EXPECT_NO_THROW(sol = core::CubisSolver().solve(f.ctx()));
  EXPECT_EQ(sol.status, SolverStatus::kInfeasible);
}

TEST(CubisFault, StepAllocationFailureDegradesToNumericalIssue) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  faultinject::arm(faultinject::Site::kStepAlloc, 1);
  Fixture f(26, 5, 2.0, 1.0);
  core::DefenderSolution sol;
  EXPECT_NO_THROW(sol = core::CubisSolver().solve(f.ctx()));
  EXPECT_EQ(sol.status, SolverStatus::kNumericalIssue);
  EXPECT_EQ(sol.strategy.size(), 5u);  // incumbent survives
}

TEST(CubisFault, SimplexDeadlinePropagatesThroughMilpBackend) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  faultinject::arm(faultinject::Site::kSimplexDeadline, -1);
  Fixture f(27, 3, 1.0, 0.5);
  core::CubisOptions opt;
  opt.backend = core::StepBackend::kMilp;
  opt.segments = 5;
  opt.warm_start_from_dp = false;
  core::DefenderSolution sol = core::CubisSolver(opt).solve(f.ctx());
  EXPECT_EQ(sol.status, SolverStatus::kDeadlineExceeded);
  EXPECT_EQ(sol.strategy.size(), 3u);
}

TEST(CubisBudget, MultisectionRoundHonorsCancellation) {
  Fixture f(28, 8, 3.0, 1.0);
  core::CubisOptions opt;
  opt.parallel_sections = 4;
  SolveBudget budget;
  budget.request_cancel();
  core::DefenderSolution sol = core::CubisSolver(opt).solve(f.ctx(&budget));
  EXPECT_EQ(sol.status, SolverStatus::kCancelled);
}

// ---- degenerate inputs --------------------------------------------------

TEST(Degenerate, SingleTargetSolves) {
  Fixture f(31, 1, 1.0, 1.0);
  core::DefenderSolution sol = core::CubisSolver().solve(f.ctx());
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  ASSERT_EQ(sol.strategy.size(), 1u);
  EXPECT_GE(sol.strategy[0], -1e-12);
  EXPECT_LE(sol.strategy[0], 1.0 + 1e-12);
}

TEST(Degenerate, ZeroResourcesSolves) {
  Fixture f(32, 4, 0.0, 1.0);
  core::DefenderSolution sol;
  EXPECT_NO_THROW(sol = core::CubisSolver().solve(f.ctx()));
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  for (double xi : sol.strategy) EXPECT_NEAR(xi, 0.0, 1e-9);
}

TEST(Degenerate, ResourcesCoverEveryTarget) {
  // R == T: full coverage is affordable; no crash, xi stays in [0, 1].
  Fixture f(33, 4, 4.0, 1.0);
  core::DefenderSolution sol;
  EXPECT_NO_THROW(sol = core::CubisSolver().solve(f.ctx()));
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  for (double xi : sol.strategy) {
    EXPECT_GE(xi, -1e-12);
    EXPECT_LE(xi, 1.0 + 1e-12);
  }
}

TEST(Degenerate, OversizedResourcesAreTypedError) {
  // R > T is malformed input: a typed validation error, never a crash.
  EXPECT_THROW(Fixture(33, 4, 5.0, 1.0), InvalidModelError);
}

TEST(Degenerate, CollapsedIntervalsSolve) {
  // Width 0: L == U everywhere — the uncertainty set is a point.
  Fixture f(34, 5, 2.0, 0.0);
  core::DefenderSolution sol;
  EXPECT_NO_THROW(sol = core::CubisSolver().solve(f.ctx()));
  ASSERT_TRUE(sol.ok()) << to_string(sol.status);
  EXPECT_LE(sol.lb, sol.ub);
}

// ---- malformed model files ----------------------------------------------

TEST(ModelIo, GarbageHeaderIsTypedError) {
  std::istringstream is("not-a-model 7\n");
  EXPECT_THROW(lp::read_model(is), InvalidModelError);
}

TEST(ModelIo, TruncatedBodyIsTypedError) {
  std::istringstream is("cubisg-model 1\nsense max\ncols 3\nx 0 1 1 0\n");
  EXPECT_THROW(lp::read_model(is), InvalidModelError);
}

TEST(ModelIo, MissingFileIsTypedError) {
  EXPECT_THROW(lp::load_model("/nonexistent/cubisg-does-not-exist.lp"),
               InvalidModelError);
}

TEST(ModelIo, InjectedIoFailureIsTypedError) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  const std::string path =
      ::testing::TempDir() + "/cubisg_robustness_model.lp";
  ASSERT_TRUE(lp::save_model(path, textbook_lp()));
  faultinject::arm(faultinject::Site::kModelIo, 1);
  EXPECT_THROW(lp::load_model(path), InvalidModelError);
  // Disarmed window over: the same file now loads.
  lp::Model m = lp::load_model(path);
  EXPECT_EQ(m.num_cols(), 2);
}

// ---- thread pool shutdown fallback -------------------------------------

TEST(PoolShutdown, SubmitThrowsTypedErrorWhenDraining) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  ThreadPool pool(2);
  faultinject::arm(faultinject::Site::kPoolSubmit, -1);
  EXPECT_THROW(pool.submit([] {}), PoolShutdownError);
}

TEST(PoolShutdown, ParallelForFallsBackToInlineExecution) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  ThreadPool pool(2);
  faultinject::arm(faultinject::Site::kPoolSubmit, -1);
  std::atomic<int> hits{0};
  EXPECT_NO_THROW(
      parallel_for(pool, 0, 100, [&](std::size_t) { ++hits; }));
  EXPECT_EQ(hits.load(), 100);  // every index ran, just not in the pool
}

TEST(PoolShutdown, PartialSubmissionStillCompletesAllWork) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  ThreadPool pool(4);
  // First two submits succeed, the rest throw: the tail must run inline.
  faultinject::arm(faultinject::Site::kPoolSubmit, -1, /*skip=*/2);
  std::atomic<int> hits{0};
  EXPECT_NO_THROW(parallel_for(pool, 0, 64,
                               [&](std::size_t) { ++hits; },
                               /*grain=*/1));
  EXPECT_EQ(hits.load(), 64);
}

TEST(PoolShutdown, SolveSurvivesPoolDrainFallback) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "compiled out";
  FaultGuard guard;
  faultinject::arm(faultinject::Site::kPoolSubmit, -1);
  Fixture f(35, 6, 2.0, 1.0);
  core::CubisOptions opt;
  opt.parallel_sections = 4;  // multisection forced through parallel_map
  core::DefenderSolution sol;
  EXPECT_NO_THROW(sol = core::CubisSolver(opt).solve(f.ctx()));
  EXPECT_TRUE(sol.ok()) << to_string(sol.status);
}

// ---- status plumbing ----------------------------------------------------

TEST(Status, BudgetStopClassifierAndNames) {
  EXPECT_TRUE(is_budget_stop(SolverStatus::kDeadlineExceeded));
  EXPECT_TRUE(is_budget_stop(SolverStatus::kCancelled));
  EXPECT_TRUE(is_budget_stop(SolverStatus::kIterLimit));
  EXPECT_TRUE(is_budget_stop(SolverStatus::kTimeLimit));
  EXPECT_FALSE(is_budget_stop(SolverStatus::kOptimal));
  EXPECT_FALSE(is_budget_stop(SolverStatus::kInfeasible));
  EXPECT_EQ(to_string(SolverStatus::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_EQ(to_string(SolverStatus::kCancelled), "cancelled");
}

TEST(Status, PerStatusCountersRecorded) {
  obs::Counter& deadline_total =
      obs::Registry::global().counter("solve.deadline_exceeded_total");
  const std::int64_t before = deadline_total.value();
  Fixture f(36, 5, 2.0, 1.0);
  SolveBudget budget;
  budget.set_deadline_after(-1.0);
  core::CubisSolver().solve(f.ctx(&budget));
  EXPECT_GE(deadline_total.value() - before, 1);
}

}  // namespace
}  // namespace cubisg

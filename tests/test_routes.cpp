// Tests for route-constrained patrol decomposition.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "games/comb_sampling.hpp"
#include "games/routes.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::games {
namespace {

TEST(Routes, WindowRoutesOnLineAndCycle) {
  auto line = window_routes(5, 2, false);
  ASSERT_EQ(line.size(), 4u);
  EXPECT_EQ(line[0].covered, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(line[3].covered, (std::vector<std::size_t>{3, 4}));

  auto cycle = window_routes(5, 2, true);
  ASSERT_EQ(cycle.size(), 5u);
  EXPECT_EQ(cycle[4].covered, (std::vector<std::size_t>{0, 4}));  // wraps

  EXPECT_THROW(window_routes(5, 0), InvalidModelError);
  EXPECT_THROW(window_routes(5, 6), InvalidModelError);
}

TEST(Routes, AllKSubsets) {
  auto subsets = all_k_subsets(5, 2);
  EXPECT_EQ(subsets.size(), 10u);  // C(5,2)
  EXPECT_THROW(all_k_subsets(3, 4), InvalidModelError);
  EXPECT_THROW(all_k_subsets(50, 25), InvalidModelError);  // too many
}

TEST(Routes, KnownMixtureRoundTrips) {
  // Build a marginal from a known mixture of windows, then recover a
  // mixture achieving it exactly.
  auto routes = window_routes(6, 2, false);
  std::vector<double> x(6, 0.0);
  // 0.6 of route {0,1}, 0.4 of route {2,3}, 1.0 of route {4,5}: 2 units.
  for (std::size_t i : routes[0].covered) x[i] += 0.6;
  for (std::size_t i : routes[2].covered) x[i] += 0.4;
  for (std::size_t i : routes[4].covered) x[i] += 1.0;

  RouteMixture mix = marginal_to_route_mixture(routes, x, 2.0);
  EXPECT_NEAR(mix.deviation, 0.0, 1e-9);
  auto marg = route_mixture_marginals(routes, mix, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(marg[i], x[i], 1e-8) << "target " << i;
  }
}

TEST(Routes, DetectsUnimplementableMarginal) {
  // Windows of width 2 always cover targets in adjacent pairs; a marginal
  // demanding coverage 1 on targets 0 and 2 but 0 on target 1 cannot be
  // expressed with a single unit.
  auto routes = window_routes(3, 2, false);  // {0,1}, {1,2}
  std::vector<double> x{1.0, 0.0, 1.0};
  RouteMixture mix = marginal_to_route_mixture(routes, x, 1.0);
  EXPECT_GT(mix.deviation, 0.3);
}

TEST(Routes, SingletonWindowsMatchCombSampling) {
  // Width-1 windows make every box-simplex marginal implementable —
  // the same guarantee comb sampling provides.
  Rng rng(31);
  auto routes = window_routes(7, 1, false);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> raw(7);
    for (auto& v : raw) v = rng.uniform(0.0, 1.0);
    auto x = project_to_simplex_box(raw, 3.0);
    RouteMixture mix = marginal_to_route_mixture(routes, x, 3.0);
    EXPECT_NEAR(mix.deviation, 0.0, 1e-8) << "trial " << trial;
    // And comb sampling agrees it is implementable.
    auto comb = comb_decomposition(x);
    auto marg = mixture_marginals(7, comb);
    for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(marg[i], x[i], 1e-10);
  }
}

TEST(Routes, BudgetBindsMixture) {
  auto routes = window_routes(4, 2, false);
  std::vector<double> x(4, 1.0);  // wants full coverage: needs 2 units
  RouteMixture under = marginal_to_route_mixture(routes, x, 1.0);
  EXPECT_GT(under.deviation, 0.2);  // cannot do it with one unit
  RouteMixture enough = marginal_to_route_mixture(routes, x, 2.0);
  EXPECT_NEAR(enough.deviation, 0.0, 1e-8);
}

TEST(Routes, Validation) {
  std::vector<PatrolRoute> routes{{{0, 9}}};
  std::vector<double> x{0.5, 0.5};
  EXPECT_THROW(marginal_to_route_mixture(routes, x, 1.0),
               InvalidModelError);  // target 9 out of range
  EXPECT_THROW(
      marginal_to_route_mixture(std::vector<PatrolRoute>{}, x, 1.0),
      InvalidModelError);
}

TEST(Routes, CycleWindowsCoverUniformMarginal) {
  // On a cycle, the uniform marginal R*w/T per target is implementable by
  // an equal mixture of all windows.
  auto routes = window_routes(6, 3, true);
  std::vector<double> x(6, 2.0 * 3.0 / 6.0);  // R=2 units, width 3
  RouteMixture mix = marginal_to_route_mixture(routes, x, 2.0);
  EXPECT_NEAR(mix.deviation, 0.0, 1e-8);
}

}  // namespace
}  // namespace cubisg::games

// Tests for the LP presolve reductions and the presolved solve wrapper.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lp/model.hpp"
#include "lp/presolve.hpp"
#include "lp/simplex.hpp"
#include "brute_force.hpp"

namespace cubisg::lp {
namespace {

TEST(Presolve, SubstitutesFixedColumns) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_col("x", 0.0, 5.0, 1.0);
  const int y = m.add_col("y", 2.0, 2.0, 3.0);  // fixed at 2
  int r = m.add_row("r", Sense::kLe, 10.0);
  m.set_coeff(r, x, 1.0);
  m.set_coeff(r, y, 2.0);

  PresolveResult pre = presolve(m);
  EXPECT_FALSE(pre.infeasible);
  // The reductions cascade: y fixed -> the row becomes the singleton
  // x <= 6 -> a bound (x's own 5 is tighter) -> x is an empty column and
  // is fixed at its objective-preferred bound.  Nothing survives.
  EXPECT_EQ(pre.reduced.num_cols(), 0);
  EXPECT_EQ(pre.col_map[x], -1);
  EXPECT_EQ(pre.col_map[y], -1);
  EXPECT_DOUBLE_EQ(pre.fixed_value[y], 2.0);
  EXPECT_DOUBLE_EQ(pre.fixed_value[x], 5.0);

  LpSolution s = solve_lp_presolved(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[x], 5.0, 1e-9);
  EXPECT_NEAR(s.x[y], 2.0, 1e-12);
  EXPECT_NEAR(s.objective, 5.0 + 6.0, 1e-9);
}

TEST(Presolve, SingletonRowBecomesBound) {
  // Two-column row keeps the model alive; the singleton row only tightens
  // x's bound.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_col("x", 0.0, 10.0, 1.0);
  const int y = m.add_col("y", 0.0, 10.0, 1.0);
  int r = m.add_row("cap", Sense::kLe, 3.0);  // x <= 3
  m.set_coeff(r, x, 1.0);
  int r2 = m.add_row("joint", Sense::kLe, 8.0);
  m.set_coeff(r2, x, 1.0);
  m.set_coeff(r2, y, 1.0);
  PresolveResult pre = presolve(m);
  EXPECT_EQ(pre.reduced.num_rows(), 1);
  ASSERT_EQ(pre.reduced.num_cols(), 2);
  EXPECT_DOUBLE_EQ(pre.reduced.col_upper(pre.col_map[x]), 3.0);
  LpSolution s = solve_lp_presolved(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 8.0, 1e-9);  // x=3, y=5
}

TEST(Presolve, SingletonRowWithNegativeCoefficient) {
  // -2x <= 4 -> x >= -2; the then-empty column is fixed at that new lower
  // bound (minimization, positive objective).
  Model m;
  const int x = m.add_col("x", -10.0, 10.0, 1.0);
  int r = m.add_row("r", Sense::kLe, 4.0);
  m.set_coeff(r, x, -2.0);
  PresolveResult pre = presolve(m);
  EXPECT_EQ(pre.reduced.num_rows(), 0);
  EXPECT_EQ(pre.reduced.num_cols(), 0);
  EXPECT_EQ(pre.col_map[x], -1);
  EXPECT_DOUBLE_EQ(pre.fixed_value[x], -2.0);
  LpSolution s = solve_lp_presolved(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -2.0, 1e-12);
}

TEST(Presolve, EqualitySingletonFixesColumn) {
  Model m;
  const int x = m.add_col("x", 0.0, 10.0, 1.0);
  const int y = m.add_col("y", 0.0, 10.0, -1.0);
  int r = m.add_row("fix", Sense::kEq, 4.0);  // 2x = 4 -> x = 2
  m.set_coeff(r, x, 2.0);
  int r2 = m.add_row("link", Sense::kLe, 8.0);
  m.set_coeff(r2, x, 1.0);
  m.set_coeff(r2, y, 1.0);
  PresolveResult pre = presolve(m);
  // Chain: singleton eq fixes x=2; substitution leaves y <= 6 as a
  // singleton row -> bound; y is then empty and fixed at its preferred
  // bound (minimize, obj -1 -> upper bound 6).  Fully eliminated.
  EXPECT_EQ(pre.col_map[x], -1);
  EXPECT_DOUBLE_EQ(pre.fixed_value[x], 2.0);
  EXPECT_EQ(pre.reduced.num_rows(), 0);
  EXPECT_EQ(pre.reduced.num_cols(), 0);
  EXPECT_EQ(pre.col_map[y], -1);
  EXPECT_DOUBLE_EQ(pre.fixed_value[y], 6.0);
}

TEST(Presolve, DetectsInfeasibleBoundsAndRows) {
  {
    Model m;
    const int x = m.add_col("x", 0.0, 1.0, 0.0);
    int r = m.add_row("r", Sense::kGe, 5.0);  // x >= 5 vs x <= 1
    m.set_coeff(r, x, 1.0);
    EXPECT_TRUE(presolve(m).infeasible);
  }
  {
    Model m;
    const int x = m.add_col("x", 2.0, 2.0, 0.0);
    int r = m.add_row("r", Sense::kEq, 5.0);  // 2 = 5 after substitution
    m.set_coeff(r, x, 1.0);
    EXPECT_TRUE(presolve(m).infeasible);
  }
}

TEST(Presolve, EmptyColumnFixedAtPreferredBound) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  m.add_col("free_profit", 0.0, 7.0, 2.0);  // no rows: take the max
  m.add_col("free_cost", -3.0, 7.0, -1.0);  // take the min
  PresolveResult pre = presolve(m);
  EXPECT_EQ(pre.reduced.num_cols(), 0);
  LpSolution s = solve_lp_presolved(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 7.0, 1e-12);
  EXPECT_NEAR(s.x[1], -3.0, 1e-12);
  EXPECT_NEAR(s.objective, 14.0 + 3.0, 1e-12);
}

TEST(Presolve, DetectsUnboundedEmptyColumn) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  m.add_col("runaway", 0.0, kInf, 1.0);
  PresolveResult pre = presolve(m);
  EXPECT_TRUE(pre.unbounded);
  EXPECT_EQ(solve_lp_presolved(m).status, SolverStatus::kUnbounded);
}

TEST(Presolve, FullyEliminatedModelSolvesDirectly) {
  Model m;
  const int x = m.add_col("x", 3.0, 3.0, 2.0);
  int r = m.add_row("check", Sense::kLe, 10.0);
  m.set_coeff(r, x, 1.0);
  LpSolution s = solve_lp_presolved(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[x], 3.0, 1e-12);
  EXPECT_NEAR(s.objective, 6.0, 1e-12);
}

TEST(Presolve, RandomModelsMatchPlainSolve) {
  Rng rng(555);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    const int rows = static_cast<int>(rng.uniform_int(0, 4));
    Model m;
    m.set_objective_sense(rng.uniform() < 0.5 ? Objective::kMinimize
                                              : Objective::kMaximize);
    for (int j = 0; j < n; ++j) {
      double lo = rng.uniform(-3.0, 0.0);
      double hi = lo + rng.uniform(0.0, 4.0);
      if (rng.uniform() < 0.25) hi = lo;  // some fixed columns
      m.add_col("x" + std::to_string(j), lo, hi, rng.uniform(-2.0, 2.0));
    }
    for (int r = 0; r < rows; ++r) {
      const double pick = rng.uniform();
      const Sense sense = pick < 0.4   ? Sense::kLe
                          : pick < 0.8 ? Sense::kGe
                                       : Sense::kEq;
      int row = m.add_row("r" + std::to_string(r), sense,
                          rng.uniform(-4.0, 4.0));
      // Sparse rows so singletons appear often.
      for (int j = 0; j < n; ++j) {
        if (rng.uniform() < 0.5) m.set_coeff(row, j, rng.uniform(-2.0, 2.0));
      }
    }

    LpSolution plain = solve_lp(m);
    LpSolution pres = solve_lp_presolved(m);
    if (plain.status == SolverStatus::kInfeasible) {
      EXPECT_EQ(pres.status, SolverStatus::kInfeasible) << "trial " << trial;
      continue;
    }
    ASSERT_TRUE(plain.optimal()) << "trial " << trial;
    ASSERT_TRUE(pres.optimal())
        << "trial " << trial << " " << to_string(pres.status);
    EXPECT_NEAR(plain.objective, pres.objective, 1e-6) << "trial " << trial;
    EXPECT_LE(m.max_violation(pres.x), 1e-7) << "trial " << trial;
  }
}

TEST(Presolve, PostsolveMapsEliminatedColumns) {
  // a fixed; b and c survive in a genuine two-column row.
  Model m;
  const int a = m.add_col("a", 1.0, 1.0, 0.0);
  const int b = m.add_col("b", 0.0, 2.0, 1.0);
  const int c = m.add_col("c", 0.0, 2.0, 1.0);
  int r = m.add_row("r", Sense::kLe, 3.0);
  m.set_coeff(r, a, 1.0);
  m.set_coeff(r, b, 1.0);
  m.set_coeff(r, c, 1.0);
  PresolveResult pre = presolve(m);
  ASSERT_EQ(pre.reduced.num_cols(), 2);
  EXPECT_DOUBLE_EQ(pre.reduced.row_rhs(0), 2.0);  // rhs shifted by a=1
  auto x = postsolve(pre, {1.5, 0.5});
  EXPECT_DOUBLE_EQ(x[a], 1.0);
  EXPECT_DOUBLE_EQ(x[b], 1.5);
  EXPECT_DOUBLE_EQ(x[c], 0.5);
}

}  // namespace
}  // namespace cubisg::lp

// Observability layer: sharded metrics exactness under concurrency, the
// runtime kill switch, nested trace spans, and the JSON exports.
//
// This binary carries the `tsan` ctest label: the concurrency tests here
// (counter hammering, log-sink swapping mid-emit) are the ones that must
// stay clean under ThreadSanitizer (-DCUBISG_ENABLE_TSAN=ON).
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/process_metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/solve_report.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace cubisg {
namespace {

// With -DCUBISG_OBS=OFF recording compiles out (values stay 0); the API
// surface still has to build and run, so only value assertions skip.
#define CUBISG_SKIP_IF_OBS_COMPILED_OUT()                            \
  do {                                                               \
    if (!CUBISG_OBS_ENABLED) {                                       \
      GTEST_SKIP() << "telemetry compiled out (CUBISG_OBS=OFF)";     \
    }                                                                \
  } while (0)

TEST(Metrics, CounterExactUnderConcurrency) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::Counter& c =
      obs::Registry::global().counter("test.concurrent_counter");
  c.reset();
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 10000;
  ThreadPool pool(8);
  std::vector<std::future<void>> done;
  done.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    done.push_back(pool.submit([&c] {
      for (int i = 0; i < kAddsPerTask; ++i) c.add(1);
    }));
  }
  for (auto& f : done) f.get();
  // Relaxed sharded adds must still be exact once all writers joined.
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kTasks) * kAddsPerTask);
}

TEST(Metrics, CounterRuntimeDisableIsNoOp) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::Counter& c = obs::Registry::global().counter("test.disabled_counter");
  c.reset();
  obs::set_enabled(false);
  c.add(5);
  obs::set_enabled(true);
  EXPECT_EQ(c.value(), 0);
  c.add(5);
  EXPECT_EQ(c.value(), 5);
}

TEST(Metrics, GaugeSetAndAdd) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::Gauge& g = obs::Registry::global().gauge("test.gauge");
  g.reset();
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.25);
}

TEST(Metrics, HistogramBucketsCountAndSum) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::Histogram& h = obs::Registry::global().histogram(
      "test.histogram", std::vector<double>{1.0, 10.0, 100.0});
  h.reset();
  for (double v : {0.5, 0.9, 5.0, 50.0, 500.0, 5000.0}) h.record(v);
  const std::vector<std::int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2);       // <= 1
  EXPECT_EQ(counts[1], 1);       // (1, 10]
  EXPECT_EQ(counts[2], 1);       // (10, 100]
  EXPECT_EQ(counts[3], 2);       // overflow
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 0.9 + 5.0 + 50.0 + 500.0 + 5000.0);
}

TEST(Metrics, SnapshotDeltaSinceBaseline) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::Counter& c = obs::Registry::global().counter("test.delta_counter");
  c.reset();
  c.add(3);
  const obs::MetricsSnapshot baseline = obs::Registry::global().snapshot();
  c.add(4);
  const obs::MetricsSnapshot delta =
      obs::Registry::global().snapshot().delta_since(baseline);
  EXPECT_EQ(delta.counter("test.delta_counter"), 4);
  EXPECT_EQ(delta.counter("test.never_registered"), 0);
}

TEST(Metrics, SolveScopeCapturesOnlyItsWindow) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::Counter& c = obs::Registry::global().counter("test.scope_counter");
  c.reset();
  c.add(100);
  obs::SolveScope scope;
  c.add(7);
  const obs::SolveTelemetry t = scope.finish();
  EXPECT_EQ(t.counter("test.scope_counter"), 7);
  EXPECT_GE(t.wall_seconds, 0.0);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"test.scope_counter\":7"), std::string::npos);
}

TEST(Metrics, JsonContainsAllThreeKinds) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::Registry::global().counter("test.json_counter").add(2);
  obs::Registry::global().gauge("test.json_gauge").set(1.5);
  obs::Registry::global().histogram("test.json_histogram").record(0.5);
  const std::string json = obs::Registry::global().snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

TEST(Metrics, SameKindReRegistrationReturnsTheSameMetric) {
  // Registration is independent of the recording switch, so no OBS skip.
  obs::Counter& a = obs::Registry::global().counter("test.kind_stable");
  obs::Counter& b = obs::Registry::global().counter("test.kind_stable");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h1 =
      obs::Registry::global().histogram("test.kind_stable_hist", {1.0, 2.0});
  // Bounds are first-registration-wins; re-registering is still the same
  // family, not a conflict.
  obs::Histogram& h2 =
      obs::Registry::global().histogram("test.kind_stable_hist", {9.0});
  EXPECT_EQ(&h1, &h2);
  ASSERT_EQ(h2.bounds().size(), 2u);
}

TEST(Metrics, CrossKindReRegistrationThrows) {
  // A name silently shadowed across kinds used to collapse onto one
  // Prometheus family and drop whichever sorted second; now it is a
  // programming error surfaced at registration time.
  obs::Registry::global().counter("test.kind_conflict");
  EXPECT_THROW(obs::Registry::global().gauge("test.kind_conflict"),
               std::logic_error);
  EXPECT_THROW(obs::Registry::global().histogram("test.kind_conflict"),
               std::logic_error);
  obs::Registry::global().gauge("test.kind_conflict_gauge");
  EXPECT_THROW(obs::Registry::global().counter("test.kind_conflict_gauge"),
               std::logic_error);
  // The original registration keeps working after a rejected conflict.
  EXPECT_NO_THROW(obs::Registry::global().counter("test.kind_conflict"));
}

TEST(Trace, NestedSpansRecordDepthAndContainment) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::set_trace_enabled(true);
  obs::clear_trace();
  {
    obs::TraceSpan outer("test.outer");
    {
      obs::TraceSpan inner("test.inner");
    }
  }
  obs::set_trace_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::collect_trace_events();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "test.outer") outer = &e;
    if (e.name == "test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_EQ(inner->depth, outer->depth + 1);
  // The child interval nests inside the parent interval.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            outer->start_ns + outer->dur_ns);
}

TEST(Trace, DisabledSpansRecordNothing) {
  obs::set_trace_enabled(false);
  obs::clear_trace();
  {
    obs::TraceSpan span("test.invisible");
  }
  for (const obs::TraceEvent& e : obs::collect_trace_events()) {
    EXPECT_NE(e.name, "test.invisible");
  }
}

TEST(Trace, ChromeJsonRoundTrip) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::set_trace_enabled(true);
  obs::clear_trace();
  {
    obs::TraceSpan outer("test.export_outer");
    obs::TraceSpan inner("test.export_inner");
  }
  obs::set_trace_enabled(false);
  const std::string json = obs::trace_to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += ch == '{' ? 1 : (ch == '}' ? -1 : 0);
    brackets += ch == '[' ? 1 : (ch == ']' ? -1 : 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ThreadPoolTelemetry, TasksFeedLatencyHistogramAndCounter) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  const std::int64_t before =
      obs::Registry::global().counter("threadpool.tasks_total").value();
  const std::int64_t hist_before = obs::Registry::global()
                                       .histogram("threadpool.task_latency")
                                       .count();
  {
    ThreadPool pool(2);
    std::vector<std::future<int>> done;
    for (int i = 0; i < 32; ++i) {
      done.push_back(pool.submit([i] { return i; }));
    }
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(
      obs::Registry::global().counter("threadpool.tasks_total").value(),
      before + 32);
  EXPECT_EQ(obs::Registry::global()
                .histogram("threadpool.task_latency")
                .count(),
            hist_before + 32);
}

TEST(Log, EmitFeedsLevelCounter) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  const LogLevel saved = log_level();
  set_log_sink([](LogLevel, const std::string&) {});  // silence stderr
  set_log_level(LogLevel::kInfo);
  const std::int64_t before =
      obs::Registry::global().counter("log.lines_total.info").value();
  CUBISG_LOG(LogLevel::kInfo) << "counted line";
  CUBISG_LOG(LogLevel::kDebug) << "below the level, not counted";
  EXPECT_EQ(
      obs::Registry::global().counter("log.lines_total.info").value(),
      before + 1);
  set_log_level(saved);
  set_log_sink(nullptr);
}

TEST(Log, SinkSwapWhileWorkersEmitIsSafe) {
  // The emit path copies the sink under the mutex and invokes the copy
  // outside it, so swapping sinks mid-emit must never race or crash.
  // TSAN is the real judge here.
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  std::atomic<int> delivered{0};
  set_log_sink([&delivered](LogLevel, const std::string&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> done;
    for (int t = 0; t < 8; ++t) {
      done.push_back(pool.submit([] {
        for (int i = 0; i < 200; ++i) {
          CUBISG_LOG(LogLevel::kInfo) << "worker line " << i;
        }
      }));
    }
    for (int swap = 0; swap < 50; ++swap) {
      set_log_sink([&delivered](LogLevel, const std::string&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(delivered.load(), 8 * 200);
  set_log_level(saved);
  set_log_sink(nullptr);
}

TEST(SolveReportBuffer, RingEvictsOldestAndKeepsIds) {
  obs::SolveReportBuffer buffer(4);
  for (int i = 1; i <= 10; ++i) {
    obs::SolveReport r;
    r.solver = "ring-test";
    r.targets = static_cast<std::size_t>(i);
    const std::int64_t id = buffer.add(std::move(r));
    EXPECT_EQ(id, i);  // ids count every add, not just retained ones
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.capacity(), 4u);
  EXPECT_EQ(buffer.total_recorded(), 10);
  const std::vector<obs::SolveReport> recent = buffer.recent();
  ASSERT_EQ(recent.size(), 4u);
  // Oldest first: adds 7..10 survive, 1..6 were evicted.
  for (std::size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, static_cast<std::int64_t>(7 + i));
    EXPECT_EQ(recent[i].targets, static_cast<std::size_t>(7 + i));
  }
  buffer.clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.total_recorded(), 10);  // history counter survives
}

TEST(SolveReportBuffer, JsonCarriesTrajectoryAndTotals) {
  obs::SolveReportBuffer buffer(8);
  obs::SolveReport r;
  r.solver = "cubis-test";
  r.status = "optimal";
  r.targets = 5;
  r.lb = 0.5;
  r.ub = 0.625;
  r.worst_case_utility = 0.6;
  r.binary_steps = 2;
  r.trajectory.push_back({0.0, 1.0, 2, 1});
  r.trajectory.push_back({0.5, 0.625, 1, 3});
  buffer.add(std::move(r));
  const std::string json = buffer.to_json();
  EXPECT_NE(json.find("\"total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos);
  EXPECT_NE(json.find("\"solver\":\"cubis-test\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"optimal\""), std::string::npos);
  EXPECT_NE(json.find("\"trajectory\""), std::string::npos);
  EXPECT_NE(json.find("\"feasible\":2"), std::string::npos);
  EXPECT_NE(json.find("\"infeasible\":3"), std::string::npos);
  // Gap of the second round: 0.625 - 0.5.
  EXPECT_NE(json.find("0.125"), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += ch == '{' ? 1 : (ch == '}' ? -1 : 0);
    brackets += ch == '[' ? 1 : (ch == ']' ? -1 : 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(SolveReportBuffer, ConcurrentAddsKeepRingConsistent) {
  obs::SolveReportBuffer buffer(16);
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buffer, t] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        obs::SolveReport r;
        r.solver = "writer-" + std::to_string(t);
        r.trajectory.push_back({0.0, 1.0, 1, 0});
        buffer.add(std::move(r));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(buffer.size(), 16u);
  EXPECT_EQ(buffer.total_recorded(),
            std::int64_t{kThreads} * kAddsPerThread);
  // All ids unique and within the issued range.
  const std::vector<obs::SolveReport> recent = buffer.recent();
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_LT(recent[i - 1].id, recent[i].id);  // oldest-first ordering
  }
}

TEST(Trace, JobScopeTagsSpansAndManualEvents) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::set_trace_enabled(true);
  obs::clear_trace();
  EXPECT_EQ(obs::current_trace_job(), 0u);
  {
    obs::TraceJobScope scope(42);
    EXPECT_EQ(obs::current_trace_job(), 42u);
    obs::TraceSpan span("test.tagged");
  }
  EXPECT_EQ(obs::current_trace_job(), 0u);
  const std::int64_t now = obs::trace_now_ns();
  obs::record_trace_event("test.manual", now - 1000, 1000, 7);
  obs::set_trace_enabled(false);
  const std::vector<obs::TraceEvent> events = obs::collect_trace_events();
  const obs::TraceEvent* tagged = nullptr;
  const obs::TraceEvent* manual = nullptr;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "test.tagged") tagged = &e;
    if (e.name == "test.manual") manual = &e;
  }
  ASSERT_NE(tagged, nullptr);
  EXPECT_EQ(tagged->job, 42u);
  ASSERT_NE(manual, nullptr);
  EXPECT_EQ(manual->job, 7u);
  EXPECT_EQ(manual->dur_ns, 1000);
  // Job ids surface in the Chrome export args.
  obs::set_trace_enabled(true);
  const std::string json = obs::trace_to_chrome_json();
  obs::set_trace_enabled(false);
  EXPECT_NE(json.find("\"job\":42"), std::string::npos);
  EXPECT_NE(json.find("\"job\":7"), std::string::npos);
  obs::clear_trace();
}

// Satellite coverage: many workers emitting spans while exports run
// concurrently.  The export must stay valid Chrome JSON, every worker's
// events must carry its job id, and per-thread completion timestamps must
// be monotonic.  TSAN judges the buffer/export synchronization.
TEST(Trace, ConcurrentSpansExportValidChromeJson) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::set_trace_enabled(true);
  obs::clear_trace();
  constexpr int kThreads = 6;
  constexpr int kSpansPerThread = 200;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      obs::TraceJobScope scope(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan outer("test.ct.outer");
        obs::TraceSpan inner("test.ct.inner");
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Exports race the writers; they only see completed events but must
  // never tear or crash.
  for (int i = 0; i < 5; ++i) {
    const std::string json = obs::trace_to_chrome_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  }
  for (std::thread& t : threads) t.join();
  obs::set_trace_enabled(false);

  const std::vector<obs::TraceEvent> events = obs::collect_trace_events();
  std::map<int, std::int64_t> last_end_by_tid;
  std::map<std::uint64_t, int> events_by_job;
  for (const obs::TraceEvent& e : events) {
    if (e.name != "test.ct.outer" && e.name != "test.ct.inner") continue;
    EXPECT_GE(e.start_ns, 0);
    EXPECT_GE(e.dur_ns, 0);
    EXPECT_GE(e.job, 1u);
    EXPECT_LE(e.job, static_cast<std::uint64_t>(kThreads));
    ++events_by_job[e.job];
    // Spans complete in order on each thread, so per-tid completion
    // timestamps are monotonic in buffer order.
    const std::int64_t end_ns = e.start_ns + e.dur_ns;
    auto it = last_end_by_tid.find(e.tid);
    if (it != last_end_by_tid.end()) EXPECT_GE(end_ns, it->second);
    last_end_by_tid[e.tid] = end_ns;
  }
  ASSERT_EQ(events_by_job.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [job, count] : events_by_job) {
    EXPECT_EQ(count, 2 * kSpansPerThread) << "job " << job;
  }

  // Final export: full well-formedness check.
  obs::set_trace_enabled(true);
  const std::string json = obs::trace_to_chrome_json();
  obs::set_trace_enabled(false);
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += ch == '{' ? 1 : (ch == '}' ? -1 : 0);
    brackets += ch == '[' ? 1 : (ch == ']' ? -1 : 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  obs::clear_trace();
}

TEST(Trace, PhaseAccountingAccumulatesPerName) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::set_phase_accounting_enabled(true);
  obs::begin_phase_accounting();
  for (int i = 0; i < 3; ++i) {
    obs::TraceSpan span("test.phase_a");
  }
  {
    obs::TraceSpan span("test.phase_b");
  }
  const std::vector<obs::PhaseTotal> phases =
      obs::collect_phase_accounting();
  obs::set_phase_accounting_enabled(false);
  const obs::PhaseTotal* a = nullptr;
  const obs::PhaseTotal* b = nullptr;
  for (const obs::PhaseTotal& p : phases) {
    if (p.name == "test.phase_a") a = &p;
    if (p.name == "test.phase_b") b = &p;
  }
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 3);
  EXPECT_GE(a->total_ns, 0);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 1);
  // Phase accounting alone must not feed the trace buffers.
  for (const obs::TraceEvent& e : obs::collect_trace_events()) {
    EXPECT_NE(e.name, "test.phase_a");
  }
}

#if defined(__GNUC__)
__attribute__((noinline))
#endif
double
profiler_test_burn(int iters) {
  volatile double acc = 0.0;
  for (int i = 0; i < iters; ++i) acc = acc + 1e-9 * i;
  return acc;
}

TEST(Profiler, CapturesSamplesFromBusyThread) {
  if (!obs::profiler_available()) {
    // Stub surface: every entry point must be safe to call.
    EXPECT_FALSE(obs::profiler_start({}));
    EXPECT_FALSE(obs::profiler_running());
    EXPECT_NE(obs::profiler_last_error().find("compiled out"),
              std::string::npos);
    obs::profiler_register_this_thread();
    obs::profiler_unregister_this_thread();
    obs::profiler_stop();
    EXPECT_EQ(obs::profiler_samples_total(), 0);
    EXPECT_TRUE(obs::profiler_collapsed_stacks().empty());
    GTEST_SKIP() << "profiler compiled out or unsupported platform";
  }
  obs::profiler_register_this_thread();
  obs::profiler_clear();
  obs::ProfilerOptions opts;
  opts.hz = 997;  // dense sampling keeps the busy window short
  ASSERT_TRUE(obs::profiler_start(opts)) << obs::profiler_last_error();
  EXPECT_TRUE(obs::profiler_running());
  // A second start while running must fail and leave sampling intact.
  EXPECT_FALSE(obs::profiler_start(opts));
  EXPECT_TRUE(obs::profiler_running());
  // Burn until samples arrive (bounded; ~250ms of work at 997 Hz yields
  // hundreds of samples even on a loaded box).
  double sink = 0.0;
  for (int round = 0; round < 200 && obs::profiler_samples_total() < 5;
       ++round) {
    sink += profiler_test_burn(2000000);
  }
  obs::profiler_stop();
  EXPECT_FALSE(obs::profiler_running());
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(obs::profiler_samples_total(), 5);

  const std::string collapsed = obs::profiler_collapsed_stacks();
  ASSERT_FALSE(collapsed.empty());
  // Every line is "frame[;frame...] count\n".
  std::size_t begin = 0;
  while (begin < collapsed.size()) {
    std::size_t end = collapsed.find('\n', begin);
    ASSERT_NE(end, std::string::npos) << "unterminated collapsed line";
    const std::string line = collapsed.substr(begin, end - begin);
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      EXPECT_TRUE(line[i] >= '0' && line[i] <= '9') << line;
    }
    begin = end + 1;
  }

  obs::profiler_clear();
  EXPECT_EQ(obs::profiler_samples_total(), 0);
  EXPECT_TRUE(obs::profiler_collapsed_stacks().empty());
  obs::profiler_unregister_this_thread();
}

TEST(Profiler, SamplesRegisteredWorkerThreads) {
  if (!obs::profiler_available()) {
    GTEST_SKIP() << "profiler compiled out or unsupported platform";
  }
  obs::profiler_clear();
  ASSERT_TRUE(obs::profiler_start({})) << obs::profiler_last_error();
  std::atomic<bool> stop{false};
  // ProfiledThreadScope registers while sampling is live, so the timer
  // arms immediately — the path engine/pool workers take.
  std::thread worker([&stop] {
    obs::ProfiledThreadScope profiled;
    while (!stop.load(std::memory_order_acquire)) {
      profiler_test_burn(500000);
    }
  });
  for (int round = 0; round < 200 && obs::profiler_samples_total() < 3;
       ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_release);
  worker.join();
  obs::profiler_stop();
  EXPECT_GE(obs::profiler_samples_total(), 3);
  obs::profiler_clear();
}

TEST(FlightRecorder, RecordsOnlyWhenArmedAndEvictsOldest) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::FlightRecorder rec(4);
  obs::FlightEntry e;
  e.tag = "disarmed";
  EXPECT_EQ(rec.record(e), 0);  // disarmed: dropped
  EXPECT_EQ(rec.size(), 0u);

  rec.arm(0.25);
  EXPECT_TRUE(rec.armed());
  EXPECT_DOUBLE_EQ(rec.slo_seconds(), 0.25);
  for (int i = 1; i <= 10; ++i) {
    obs::FlightEntry entry;
    entry.job_id = static_cast<std::uint64_t>(i);
    entry.solve_seconds = 0.3 + 0.01 * i;
    EXPECT_EQ(rec.record(entry), i);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10);
  const std::vector<obs::FlightEntry> recent = rec.recent();
  ASSERT_EQ(recent.size(), 4u);
  for (std::size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, static_cast<std::int64_t>(7 + i));
    EXPECT_EQ(recent[i].job_id, 7 + i);
  }
  rec.disarm();
  EXPECT_FALSE(rec.armed());
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 10);
}

TEST(FlightRecorder, ArmTogglesPhaseAccounting) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::FlightRecorder rec(2);
  EXPECT_FALSE(obs::phase_accounting_enabled());
  rec.arm(1.0);
  EXPECT_TRUE(obs::phase_accounting_enabled());
  rec.disarm();
  EXPECT_FALSE(obs::phase_accounting_enabled());
}

TEST(FlightRecorder, JsonCarriesForensicFields) {
  CUBISG_SKIP_IF_OBS_COMPILED_OUT();
  obs::FlightRecorder rec(8);
  rec.arm(0.1);
  obs::FlightEntry e;
  e.job_id = 9;
  e.tag = "t200_k10";
  e.worker = 2;
  e.queue_seconds = 0.004;
  e.solve_seconds = 0.35;
  e.slo_seconds = 0.1;
  e.budget_deadline_seconds = 1.5;
  e.budget_nodes = 123;
  e.budget_iterations = 456;
  e.budget_cancelled = false;
  e.phases.push_back({"cubis.round", 2000000, 5});
  e.has_report = true;
  e.report.solver = "cubis";
  e.report.status = "optimal";
  rec.record(e);
  rec.disarm();
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"slo_seconds\":0.1"), std::string::npos);
  EXPECT_NE(json.find("\"job_id\":9"), std::string::npos);
  EXPECT_NE(json.find("\"tag\":\"t200_k10\""), std::string::npos);
  EXPECT_NE(json.find("\"worker\":2"), std::string::npos);
  EXPECT_NE(json.find("\"nodes_charged\":123"), std::string::npos);
  EXPECT_NE(json.find("\"iterations_charged\":456"), std::string::npos);
  EXPECT_NE(json.find("\"cubis.round\""), std::string::npos);
  EXPECT_NE(json.find("\"solver\":\"cubis\""), std::string::npos);
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += ch == '{' ? 1 : (ch == '}' ? -1 : 0);
    brackets += ch == '[' ? 1 : (ch == ']' ? -1 : 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(SolveReportBuffer, LastReportOnThisThreadTracksAdds) {
  obs::SolveReport r;
  r.solver = "thread-local-test";
  const std::int64_t id = obs::SolveReportBuffer::global().add(std::move(r));
  const obs::SolveReport last = obs::last_solve_report_on_this_thread();
  EXPECT_EQ(last.id, id);
  EXPECT_EQ(last.solver, "thread-local-test");
  // Another thread's adds never leak into this thread's slot.
  std::thread other([] {
    obs::SolveReport r2;
    r2.solver = "other-thread";
    obs::SolveReportBuffer::global().add(std::move(r2));
  });
  other.join();
  EXPECT_EQ(obs::last_solve_report_on_this_thread().id, id);
}

TEST(ProcessMetrics, PopulatesSelfGauges) {
  if (!obs::process_metrics_available()) {
    obs::update_process_metrics();  // must be a safe no-op
    GTEST_SKIP() << "process metrics compiled out or unsupported platform";
  }
  obs::update_process_metrics();
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  auto gauge = [&snap](const std::string& name) {
    for (const auto& g : snap.gauges) {
      if (g.name == name) return g.value;
    }
    ADD_FAILURE() << "gauge " << name << " not registered";
    return 0.0;
  };
  EXPECT_GT(gauge("process.resident_memory_bytes"), 0.0);
  EXPECT_GT(gauge("process.virtual_memory_bytes"), 0.0);
  EXPECT_GE(gauge("process.cpu_user_seconds"), 0.0);
  EXPECT_GE(gauge("process.cpu_system_seconds"), 0.0);
  EXPECT_GT(gauge("process.open_fds"), 0.0);
  EXPECT_GE(gauge("process.uptime_seconds"), 0.0);
}

}  // namespace
}  // namespace cubisg

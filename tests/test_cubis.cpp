// End-to-end tests for the CUBIS solver: paper pins, theoretical
// guarantees (Theorem 1 bookkeeping), backend agreement and robustness
// dominance over baselines.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "obs/solve_report.hpp"
#include "obs/metrics.hpp"
#include "core/gradient.hpp"
#include "core/maximin.hpp"
#include "core/pasaq.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::core {
namespace {

using behavior::IntervalMode;
using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

struct Fixture {
  games::UncertainGame ug;
  SuqrIntervalBounds bounds;
  Fixture(std::uint64_t seed, std::size_t t, double r, double width)
      : ug(make(seed, t, r, width)),
        bounds(SuqrWeightIntervals{}, ug.attacker_intervals) {}
  static games::UncertainGame make(std::uint64_t seed, std::size_t t,
                                   double r, double width) {
    Rng rng(seed);
    return games::random_uncertain_game(rng, t, r, width);
  }
  SolveContext ctx() const { return SolveContext{ug.game, bounds}; }
};

TEST(Cubis, Table1RobustStrategyMatchesPaper) {
  // The paper's Section III example: the robust strategy is (0.46, 0.54).
  auto ug = games::table1_game();
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals,
                       IntervalMode::kPaperCorners);
  CubisOptions opt;
  opt.segments = 50;
  opt.epsilon = 1e-4;
  CubisSolver solver(opt);
  DefenderSolution sol = solver.solve({ug.game, b});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.strategy[0], 0.46, 1e-6);
  EXPECT_NEAR(sol.strategy[1], 0.54, 1e-6);
}

TEST(Cubis, BinarySearchBracketIsValid) {
  Fixture f(11, 6, 2.0, 1.0);
  CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  CubisSolver solver(opt);
  DefenderSolution sol = solver.solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol.lb, sol.ub);
  EXPECT_LE(sol.ub - sol.lb, opt.epsilon + 1e-12);
  EXPECT_GE(sol.lb, f.ug.game.min_defender_penalty() - 1e-9);
  EXPECT_LE(sol.ub, f.ug.game.max_defender_reward() + 1e-9);
  EXPECT_GT(sol.binary_steps, 5);
}

TEST(Cubis, StrategyRespectsBudgetAndBounds) {
  Fixture f(12, 8, 3.0, 1.5);
  CubisSolver solver;
  DefenderSolution sol = solver.solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  double total = 0.0;
  for (double xi : sol.strategy) {
    EXPECT_GE(xi, -1e-12);
    EXPECT_LE(xi, 1.0 + 1e-12);
    total += xi;
  }
  EXPECT_LE(total, 3.0 + 1e-9);
}

TEST(Cubis, Lemma2LowerBoundHolds) {
  // Lemma 2: the realized worst case of the returned strategy is at least
  // lb - O(1/K).  Estimate the O(1/K) constant generously from the payoff
  // scale.
  for (std::uint64_t seed : {13, 14, 15}) {
    Fixture f(seed, 6, 2.0, 1.0);
    CubisOptions opt;
    opt.segments = 20;
    opt.epsilon = 1e-3;
    CubisSolver solver(opt);
    DefenderSolution sol = solver.solve(f.ctx());
    ASSERT_TRUE(sol.ok());
    const double payoff_scale = f.ug.game.max_defender_reward() -
                                f.ug.game.min_defender_penalty();
    const double slack =
        10.0 * payoff_scale / static_cast<double>(opt.segments);
    EXPECT_GE(sol.worst_case_utility, sol.lb - slack) << "seed " << seed;
  }
}

TEST(Cubis, QualityImprovesWithK) {
  Fixture f(16, 5, 2.0, 1.2);
  double w_small = 0.0, w_large = 0.0;
  {
    CubisOptions opt;
    opt.segments = 3;
    opt.epsilon = 1e-4;
    w_small = CubisSolver(opt).solve(f.ctx()).worst_case_utility;
  }
  {
    CubisOptions opt;
    opt.segments = 40;
    opt.epsilon = 1e-4;
    w_large = CubisSolver(opt).solve(f.ctx()).worst_case_utility;
  }
  EXPECT_GE(w_large, w_small - 1e-6);
}

TEST(Cubis, DpAndMilpBackendsAgree) {
  // The MILP optimizes min(f1~, f2~) pointwise, the DP its chord
  // under-approximation; both are O(1/K)-exact, and the MILP step value
  // must dominate the DP step value.
  for (std::uint64_t seed : {21, 22}) {
    Fixture f(seed, 4, 2.0, 1.0);
    const double c = 0.5 * (f.ug.game.min_defender_penalty() +
                            f.ug.game.max_defender_reward());
    CubisOptions dp_opt;
    dp_opt.segments = 8;
    dp_opt.backend = StepBackend::kDp;
    CubisOptions milp_opt = dp_opt;
    milp_opt.backend = StepBackend::kMilp;

    StepResult dp = cubis_step(f.ctx(), c, dp_opt);
    StepResult milp = cubis_step(f.ctx(), c, milp_opt);
    ASSERT_EQ(dp.status, SolverStatus::kOptimal);
    ASSERT_EQ(milp.status, SolverStatus::kOptimal);
    const bool dp_feasible = dp.objective >= -1e-9;
    const bool milp_feasible = !milp.x.empty();
    // MILP >= DP: if DP finds a feasible point the MILP must as well.
    if (dp_feasible) {
      EXPECT_TRUE(milp_feasible) << "seed " << seed;
    }
  }
}

TEST(Cubis, FullSolveBackendsAgreeOnSmallGame) {
  Fixture f(23, 3, 1.0, 1.0);
  CubisOptions dp_opt;
  dp_opt.segments = 6;
  dp_opt.epsilon = 1e-2;
  CubisOptions milp_opt = dp_opt;
  milp_opt.backend = StepBackend::kMilp;

  DefenderSolution dp = CubisSolver(dp_opt).solve(f.ctx());
  DefenderSolution milp = CubisSolver(milp_opt).solve(f.ctx());
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(milp.ok());
  // Both are O(eps + 1/K)-optimal: values must be close; the MILP may be
  // slightly better (it can exploit off-grid kink points).
  const double tol = 10.0 / 6.0 + 2 * 1e-2 + 0.5;  // generous O(eps + 1/K)
  EXPECT_NEAR(dp.worst_case_utility, milp.worst_case_utility, tol);
  EXPECT_GE(milp.lb, dp.lb - 1e-6);
}

TEST(Cubis, DominatesBaselinesInWorstCase) {
  // The headline claim: CUBIS beats the midpoint baseline and uniform in
  // worst-case utility (up to the approximation slack).
  int cubis_wins_midpoint = 0;
  int cubis_wins_uniform = 0;
  const int kTrials = 6;
  for (std::uint64_t seed = 31; seed < 31 + kTrials; ++seed) {
    Fixture f(seed, 8, 3.0, 1.5);
    CubisOptions opt;
    opt.segments = 20;
    opt.epsilon = 1e-3;
    DefenderSolution robust = CubisSolver(opt).solve(f.ctx());
    DefenderSolution mid = PasaqSolver().solve(f.ctx());
    DefenderSolution uni = UniformSolver().solve(f.ctx());
    ASSERT_TRUE(robust.ok());
    const double slack = 1e-6;
    if (robust.worst_case_utility >= mid.worst_case_utility - slack) {
      ++cubis_wins_midpoint;
    }
    if (robust.worst_case_utility >= uni.worst_case_utility - slack) {
      ++cubis_wins_uniform;
    }
  }
  // Allow one grid-resolution upset out of six.
  EXPECT_GE(cubis_wins_midpoint, kTrials - 1);
  EXPECT_GE(cubis_wins_uniform, kTrials - 1);
}

TEST(Cubis, CloseToGradientAscentOptimum) {
  // The multi-start gradient solver optimizes the exact W(x); CUBIS must
  // come within O(eps + 1/K) of it.
  Fixture f(41, 5, 2.0, 1.0);
  CubisOptions opt;
  opt.segments = 25;
  opt.epsilon = 1e-3;
  DefenderSolution cub = CubisSolver(opt).solve(f.ctx());
  GradientOptions gopt;
  gopt.num_starts = 6;
  DefenderSolution grad = GradientSolver(gopt).solve(f.ctx());
  const double payoff_scale = f.ug.game.max_defender_reward() -
                              f.ug.game.min_defender_penalty();
  const double slack = 2.0 * payoff_scale / 25.0 + 0.01;
  EXPECT_GE(cub.worst_case_utility, grad.worst_case_utility - slack);
}

TEST(Cubis, ZeroWidthMatchesMidpointBaseline) {
  // With no uncertainty at all — point payoff intervals AND point weight
  // intervals — the robust and non-robust problems coincide.
  Rng rng(42);
  auto ug = games::random_uncertain_game(rng, 5, 2.0, 0.0);
  SuqrWeightIntervals w;
  w.w1 = Interval(-4.0);
  w.w2 = Interval(0.75);
  w.w3 = Interval(0.65);
  SuqrIntervalBounds bounds(w, ug.attacker_intervals);
  SolveContext ctx{ug.game, bounds};
  CubisOptions opt;
  opt.segments = 20;
  opt.epsilon = 1e-4;
  DefenderSolution robust = CubisSolver(opt).solve(ctx);
  PasaqOptions popt;
  popt.segments = 20;
  popt.epsilon = 1e-4;
  DefenderSolution mid = PasaqSolver(popt).solve(ctx);
  EXPECT_NEAR(robust.worst_case_utility, mid.worst_case_utility, 0.05);
}

TEST(Cubis, SingleTargetGame) {
  games::UncertainGame ug{
      games::SecurityGame({{3.0, -5.0, 5.0, -3.0}}, 1.0),
      {{Interval(2.0, 4.0), Interval(-6.0, -4.0)}}};
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals);
  CubisSolver solver;
  DefenderSolution sol = solver.solve({ug.game, b});
  ASSERT_TRUE(sol.ok());
  // Full coverage of the only target: W = Rd = 5.
  EXPECT_NEAR(sol.strategy[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.worst_case_utility, 5.0, 1e-6);
}

TEST(Cubis, ZeroResources) {
  Fixture f(43, 4, 0.0, 1.0);
  CubisSolver solver;
  DefenderSolution sol = solver.solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  for (double xi : sol.strategy) EXPECT_NEAR(xi, 0.0, 1e-12);
}

TEST(Cubis, FullCoverageResources) {
  // R = T: full coverage is available but not necessarily optimal — a
  // pessimistic adversary can be baited by leaving a low-stakes target
  // slightly attractive.  The solution must be at least as good as full
  // coverage and stay within budget.
  Fixture f(44, 4, 4.0, 1.0);
  CubisSolver solver;
  DefenderSolution sol = solver.solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  double total = 0.0;
  for (double xi : sol.strategy) {
    EXPECT_GE(xi, -1e-12);
    EXPECT_LE(xi, 1.0 + 1e-12);
    total += xi;
  }
  EXPECT_LE(total, 4.0 + 1e-9);
  const std::vector<double> full(4, 1.0);
  EXPECT_GE(sol.worst_case_utility,
            worst_case_utility(f.ug.game, f.bounds, full) - 1e-9);
}

TEST(Cubis, OptionsValidation) {
  CubisOptions bad;
  bad.segments = 0;
  EXPECT_THROW(CubisSolver{bad}, InvalidModelError);
  CubisOptions bad2;
  bad2.epsilon = 0.0;
  EXPECT_THROW(CubisSolver{bad2}, InvalidModelError);
}

TEST(Cubis, PolishNeverHurtsAndUsuallyHelps) {
  // The gradient polish extension must be monotone: the polished strategy
  // is kept only when its exact worst case is at least as good.
  for (std::uint64_t seed : {61, 62, 63}) {
    Fixture f(seed, 6, 2.0, 1.5);
    CubisOptions plain;
    plain.segments = 10;
    CubisOptions polished = plain;
    polished.polish_iterations = 30;
    DefenderSolution a = CubisSolver(plain).solve(f.ctx());
    DefenderSolution b = CubisSolver(polished).solve(f.ctx());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_GE(b.worst_case_utility, a.worst_case_utility - 1e-9)
        << "seed " << seed;
  }
}

TEST(Cubis, PolishRecoversTable1GridResidual) {
  // On Table I the exact optimum (the maximin equalizer, W ~ 0.636) sits
  // off the K=50 grid (grid best: 0.56); polish must recover it.
  auto ug = games::table1_game();
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals,
                       IntervalMode::kPaperCorners);
  CubisOptions opt;
  opt.segments = 50;
  opt.epsilon = 1e-4;
  opt.polish_iterations = 50;
  DefenderSolution sol = CubisSolver(opt).solve({ug.game, b});
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol.worst_case_utility, 0.62);
}

TEST(Cubis, LocalAscentImprovesWorstCase) {
  Fixture f(64, 5, 2.0, 1.0);
  std::vector<double> x0 = games::uniform_strategy(5, 2.0);
  const double w0 = worst_case_utility(f.ug.game, f.bounds, x0);
  GradientOptions gopt;
  gopt.max_iterations = 50;
  auto [x1, w1] = local_ascent(f.ctx(), x0, gopt);
  EXPECT_GE(w1, w0 - 1e-12);
  EXPECT_NEAR(w1, worst_case_utility(f.ug.game, f.bounds, x1), 1e-9);
}

TEST(Cubis, MultisectionMatchesBisection) {
  // k-section search must land in the same epsilon-bracket as bisection
  // (Proposition 1 monotonicity) while spending fewer rounds.
  for (std::uint64_t seed : {71, 72}) {
    Fixture f(seed, 6, 2.0, 1.2);
    CubisOptions seq;
    seq.segments = 15;
    seq.epsilon = 1e-3;
    CubisOptions par = seq;
    par.parallel_sections = 4;
    DefenderSolution a = CubisSolver(seq).solve(f.ctx());
    DefenderSolution b = CubisSolver(par).solve(f.ctx());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Both brackets contain the same threshold: they overlap within eps.
    EXPECT_NEAR(a.lb, b.lb, 2.0 * seq.epsilon) << "seed " << seed;
    EXPECT_LE(b.ub - b.lb, seq.epsilon + 1e-12);
    EXPECT_NEAR(a.worst_case_utility, b.worst_case_utility, 0.7);
  }
}

TEST(Cubis, SolvePublishesConvergenceReport) {
#if !CUBISG_OBS_ENABLED
  GTEST_SKIP() << "telemetry compiled out (CUBISG_OBS=OFF)";
#endif
  obs::SolveReportBuffer& buffer = obs::SolveReportBuffer::global();
  const std::int64_t before = buffer.total_recorded();
  Fixture f(81, 6, 2.0, 1.0);
  CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  CubisSolver solver(opt);
  DefenderSolution sol = solver.solve(f.ctx());
  ASSERT_TRUE(sol.ok());

  EXPECT_EQ(buffer.total_recorded(), before + 1);
  const std::vector<obs::SolveReport> recent = buffer.recent();
  ASSERT_FALSE(recent.empty());
  const obs::SolveReport& report = recent.back();
  EXPECT_EQ(report.solver, solver.name());
  EXPECT_EQ(report.status, "optimal");
  EXPECT_EQ(report.targets, 6u);
  EXPECT_DOUBLE_EQ(report.lb, sol.lb);
  EXPECT_DOUBLE_EQ(report.ub, sol.ub);
  EXPECT_DOUBLE_EQ(report.worst_case_utility, sol.worst_case_utility);
  EXPECT_EQ(report.binary_steps, sol.binary_steps);
  EXPECT_GE(report.wall_seconds, 0.0);
  EXPECT_GT(report.feasibility_checks, 0);
  // The trajectory shrinks the bracket monotonically down to the final
  // lb/ub, and every round classifies at least one candidate threshold.
  ASSERT_FALSE(report.trajectory.empty());
  double last_gap = report.trajectory.front().gap();
  for (const obs::BinarySearchRound& round : report.trajectory) {
    EXPECT_GE(round.feasible + round.infeasible, 1);
    EXPECT_LE(round.gap(), last_gap + 1e-12);
    last_gap = round.gap();
  }
  EXPECT_DOUBLE_EQ(report.trajectory.back().lo, sol.lb);
  EXPECT_DOUBLE_EQ(report.trajectory.back().hi, sol.ub);
}

TEST(Cubis, NamesReflectBackend) {
  CubisOptions opt;
  EXPECT_EQ(CubisSolver(opt).name(), "cubis-dp");
  opt.backend = StepBackend::kMilp;
  EXPECT_EQ(CubisSolver(opt).name(), "cubis-milp");
}

}  // namespace
}  // namespace cubisg::core

// Tests for the thread pool and data-parallel helpers.
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace cubisg {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([](int a, int b) { return a + b; }, 40, 2);
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, GlobalPoolIsReusable) {
  auto& a = ThreadPool::global();
  auto& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.submit([] { return 7; }).get(), 7);
}

TEST(ParallelFor, CoversFullRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::logic_error("at 37");
                   }),
      std::logic_error);
}

TEST(ParallelFor, RespectsGrain) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  parallel_for(pool, 0, 10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  }, /*grain=*/100);  // grain > range: single task
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  auto out = parallel_map(pool, 100, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, WorksWithNonTrivialTypes) {
  ThreadPool pool(2);
  auto out = parallel_map(pool, 10, [](std::size_t i) {
    return std::vector<int>(i, static_cast<int>(i));
  });
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].size(), i);
  }
}

}  // namespace
}  // namespace cubisg

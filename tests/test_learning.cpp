// Tests for the SUQR learning module: MLE fit, bootstrap intervals, and
// the data -> intervals -> robust-solve pipeline.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "learning/data_io.hpp"
#include "learning/suqr_mle.hpp"

namespace cubisg::learning {
namespace {

games::SecurityGame test_game(std::uint64_t seed = 5) {
  Rng rng(seed);
  return games::random_game(rng, 8, 3.0);
}

const behavior::SuqrWeights kTruth{-4.0, 0.75, 0.65};

TEST(SuqrMle, RecoversTruthFromLargeSample) {
  auto game = test_game();
  Rng rng(99);
  auto data = simulate_attack_data(game, kTruth, 5000, rng);
  SuqrMleResult fit = fit_suqr(game, data);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.weights.w1, kTruth.w1, 0.4);
  EXPECT_NEAR(fit.weights.w2, kTruth.w2, 0.1);
  EXPECT_NEAR(fit.weights.w3, kTruth.w3, 0.1);
  EXPECT_LT(fit.iterations, 30);  // Newton, not gradient crawl
}

TEST(SuqrMle, LikelihoodAtFitBeatsNearbyPoints) {
  // Local optimality: perturbing the fitted weights lowers the likelihood.
  auto game = test_game();
  Rng rng(100);
  auto data = simulate_attack_data(game, kTruth, 800, rng);
  SuqrMleResult fit = fit_suqr(game, data);

  auto ll_of = [&](behavior::SuqrWeights w) {
    SuqrMleOptions opt;
    opt.max_iterations = 0;  // evaluate only
    opt.init = w;
    return fit_suqr(game, data, opt).log_likelihood;
  };
  const double at_fit = ll_of(fit.weights);
  for (double d : {0.25, -0.25}) {
    behavior::SuqrWeights w1p = fit.weights;
    w1p.w1 += d;
    EXPECT_LT(ll_of(w1p), at_fit + 1e-9);
    behavior::SuqrWeights w2p = fit.weights;
    w2p.w2 += d;
    EXPECT_LT(ll_of(w2p), at_fit + 1e-9);
  }
}

TEST(SuqrMle, DeterministicForSameData) {
  auto game = test_game();
  Rng rng(101);
  auto data = simulate_attack_data(game, kTruth, 300, rng);
  SuqrMleResult a = fit_suqr(game, data);
  SuqrMleResult b = fit_suqr(game, data);
  EXPECT_DOUBLE_EQ(a.weights.w1, b.weights.w1);
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
}

TEST(SuqrMle, Validation) {
  auto game = test_game();
  EXPECT_THROW(fit_suqr(game, {}), InvalidModelError);
  std::vector<AttackObservation> bad_shape{{std::vector<double>{0.5}, 0}};
  EXPECT_THROW(fit_suqr(game, bad_shape), InvalidModelError);
  std::vector<AttackObservation> bad_target{
      {std::vector<double>(8, 0.375), 99}};
  EXPECT_THROW(fit_suqr(game, bad_target), InvalidModelError);
}

TEST(Bootstrap, IntervalsContainTruthWithEnoughData) {
  auto game = test_game();
  Rng rng(102);
  auto data = simulate_attack_data(game, kTruth, 2000, rng);
  BootstrapOptions bo;
  bo.resamples = 50;
  bo.confidence = 0.95;
  auto iv = bootstrap_weight_intervals(game, data, {}, bo);
  EXPECT_TRUE(iv.w1.contains(kTruth.w1)) << iv.w1.lo() << "," << iv.w1.hi();
  EXPECT_TRUE(iv.w2.contains(kTruth.w2)) << iv.w2.lo() << "," << iv.w2.hi();
  EXPECT_TRUE(iv.w3.contains(kTruth.w3)) << iv.w3.lo() << "," << iv.w3.hi();
}

TEST(Bootstrap, WidthShrinksWithSampleSize) {
  auto game = test_game();
  BootstrapOptions bo;
  bo.resamples = 40;
  double prev_width = 1e18;
  for (std::size_t n : {100u, 1000u, 8000u}) {
    Rng rng(103);  // same stream start for nesting-ish samples
    auto data = simulate_attack_data(game, kTruth, n, rng);
    auto iv = bootstrap_weight_intervals(game, data, {}, bo);
    const double width = iv.w1.width() + iv.w2.width() + iv.w3.width();
    EXPECT_LT(width, prev_width);
    prev_width = width;
  }
  EXPECT_LT(prev_width, 0.7);  // tight at n=8000
}

TEST(Bootstrap, ProducesValidSuqrIntervals) {
  // The output must construct a SuqrIntervalBounds without throwing, even
  // for tiny samples where the raw percentiles straddle the sign limits.
  auto game = test_game();
  Rng rng(104);
  auto data = simulate_attack_data(game, kTruth, 25, rng);
  BootstrapOptions bo;
  bo.resamples = 30;
  auto iv = bootstrap_weight_intervals(game, data, {}, bo);
  EXPECT_LT(iv.w1.hi(), 0.0);
  EXPECT_GE(iv.w2.lo(), 0.0);
  EXPECT_GE(iv.w3.lo(), 0.0);
  Rng grng(105);
  auto ug = games::random_uncertain_game(grng, 8, 3.0, 0.5);
  EXPECT_NO_THROW(behavior::SuqrIntervalBounds(iv, ug.attacker_intervals));
}

TEST(Bootstrap, DeterministicForSeed) {
  auto game = test_game();
  Rng rng(106);
  auto data = simulate_attack_data(game, kTruth, 200, rng);
  BootstrapOptions bo;
  bo.resamples = 20;
  bo.seed = 77;
  auto a = bootstrap_weight_intervals(game, data, {}, bo);
  auto b = bootstrap_weight_intervals(game, data, {}, bo);
  EXPECT_DOUBLE_EQ(a.w1.lo(), b.w1.lo());
  EXPECT_DOUBLE_EQ(a.w3.hi(), b.w3.hi());
}

TEST(Bootstrap, Validation) {
  auto game = test_game();
  Rng rng(107);
  auto data = simulate_attack_data(game, kTruth, 50, rng);
  BootstrapOptions bad;
  bad.resamples = 1;
  EXPECT_THROW(bootstrap_weight_intervals(game, data, {}, bad),
               InvalidModelError);
  BootstrapOptions bad2;
  bad2.confidence = 1.0;
  EXPECT_THROW(bootstrap_weight_intervals(game, data, {}, bad2),
               InvalidModelError);
}

TEST(Pipeline, LearnedIntervalsCertifyTrueAttacker) {
  // End-to-end soundness: solve CUBIS with learned intervals; if the
  // intervals contain the truth, the certified worst case lower-bounds the
  // utility against the TRUE attacker.
  Rng grng(108);
  auto ug = games::random_uncertain_game(grng, 6, 2.0, 0.0);
  Rng rng(109);
  auto data = simulate_attack_data(ug.game, kTruth, 3000, rng);
  BootstrapOptions bo;
  bo.resamples = 40;
  bo.confidence = 0.97;
  auto iv = bootstrap_weight_intervals(ug.game, data, {}, bo);
  if (!iv.w1.contains(kTruth.w1) || !iv.w2.contains(kTruth.w2) ||
      !iv.w3.contains(kTruth.w3)) {
    GTEST_SKIP() << "bootstrap box missed the truth on this draw";
  }
  behavior::SuqrIntervalBounds bounds(iv, ug.attacker_intervals);
  core::CubisOptions copt;
  copt.segments = 20;
  auto sol = core::CubisSolver(copt).solve({ug.game, bounds});
  ASSERT_TRUE(sol.ok());
  behavior::SuqrModel true_model(kTruth, ug.game);
  const double true_eu = behavior::defender_expected_utility(
      ug.game, true_model, sol.strategy);
  EXPECT_GE(true_eu, sol.worst_case_utility - 1e-7);
}

TEST(DataIo, RoundTripsLosslessly) {
  auto game = test_game();
  Rng rng(111);
  auto data = simulate_attack_data(game, kTruth, 50, rng);
  std::stringstream ss;
  write_attack_data(ss, data);
  auto back = read_attack_data(ss);
  ASSERT_EQ(back.size(), data.size());
  for (std::size_t r = 0; r < data.size(); ++r) {
    EXPECT_EQ(back[r].target, data[r].target);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(back[r].coverage[i], data[r].coverage[i]);  // bit exact
    }
  }
  // Identical fit on the round-tripped data.
  EXPECT_DOUBLE_EQ(fit_suqr(game, data).weights.w1,
                   fit_suqr(game, back).weights.w1);
}

TEST(DataIo, RejectsMalformedInput) {
  std::stringstream bad("not-attacks 1");
  EXPECT_THROW(read_attack_data(bad), InvalidModelError);
  std::stringstream trunc("cubisg-attacks 1\nrecords 2 targets 3\n0.1 0.2 "
                          "0.3 1\n");
  EXPECT_THROW(read_attack_data(trunc), InvalidModelError);
  std::stringstream bad_target(
      "cubisg-attacks 1\nrecords 1 targets 2\n0.5 0.5 7\n");
  EXPECT_THROW(read_attack_data(bad_target), InvalidModelError);
  EXPECT_THROW(load_attack_data("/nonexistent/data.txt"),
               InvalidModelError);
}

TEST(SimulateData, CoverageFeasibleAndTargetsPlausible) {
  auto game = test_game();
  Rng rng(110);
  auto data = simulate_attack_data(game, kTruth, 100, rng);
  ASSERT_EQ(data.size(), 100u);
  for (const auto& obs : data) {
    EXPECT_LT(obs.target, 8u);
    double sum = 0.0;
    for (double xi : obs.coverage) {
      EXPECT_GE(xi, -1e-12);
      EXPECT_LE(xi, 1.0 + 1e-12);
      sum += xi;
    }
    EXPECT_NEAR(sum, 3.0, 1e-9);
  }
}

}  // namespace
}  // namespace cubisg::learning

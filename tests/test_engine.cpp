// Concurrent solve engine: one immutable solver instance shared by N
// worker threads must produce bitwise-identical solutions to sequential
// one-shot solves (the config/workspace split's headline guarantee), and
// the queue must honor backpressure, cancellation, drain-on-shutdown and
// the metrics contract.  tsan-labelled: the shared-solver hammering test
// is the data-race headline for the whole refactor.
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "engine/engine.hpp"
#include "games/generators.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cubisg::engine {
namespace {

using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

/// One shared problem instance with engine-compatible ownership.
struct Instance {
  std::shared_ptr<const games::SecurityGame> game;
  std::shared_ptr<const behavior::SuqrIntervalBounds> bounds;
};

Instance make_instance(std::uint64_t seed, std::size_t targets,
                       double resources, double width) {
  Rng rng(seed);
  auto ug = std::make_shared<games::UncertainGame>(
      games::random_uncertain_game(rng, targets, resources, width));
  Instance inst;
  inst.game = std::shared_ptr<const games::SecurityGame>(ug, &ug->game);
  inst.bounds = std::make_shared<SuqrIntervalBounds>(
      SuqrWeightIntervals{}, ug->attacker_intervals);
  return inst;
}

SolveJob job_for(const Instance& inst) {
  SolveJob job;
  job.game = inst.game;
  job.bounds = inst.bounds;
  return job;
}

/// Bitwise equality: the whole point of the workspace contract is that
/// reuse and concurrency change NOTHING, so no tolerance is allowed.
void expect_identical(const core::DefenderSolution& got,
                      const core::DefenderSolution& want) {
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(got.worst_case_utility, want.worst_case_utility);
  EXPECT_EQ(got.lb, want.lb);
  EXPECT_EQ(got.ub, want.ub);
  EXPECT_EQ(got.binary_steps, want.binary_steps);
  ASSERT_EQ(got.strategy.size(), want.strategy.size());
  for (std::size_t i = 0; i < want.strategy.size(); ++i) {
    EXPECT_EQ(got.strategy[i], want.strategy[i]) << "target " << i;
  }
}

/// Test solver whose solve() blocks on an external gate — lets the tests
/// pin a worker deterministically to exercise backpressure and rejection.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  void wait_entered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

class StallSolver final : public core::DefenderSolver {
 public:
  explicit StallSolver(Gate* gate) : gate_(gate) {}
  std::string name() const override { return "stall"; }
  core::DefenderSolution solve(const core::SolveContext& ctx) const override {
    {
      std::unique_lock<std::mutex> lock(gate_->mu);
      ++gate_->entered;
      gate_->cv.notify_all();
      gate_->cv.wait(lock, [&] { return gate_->open; });
    }
    core::DefenderSolution sol;
    sol.status = SolverStatus::kOptimal;
    sol.strategy.assign(ctx.game.num_targets(), 0.0);
    return sol;
  }

 private:
  Gate* gate_;
};

// ---------------------------------------------------------------------------
// Headline: a single CUBIS instance driven concurrently from 8 threads
// yields solutions bitwise-identical to sequential solves on the same
// problems.  Three instance shapes interleave so every worker's pinned
// workspace is also reused across differing sizes mid-stream.
TEST(Engine, ConcurrentSolvesMatchSequentialBitwise) {
  const std::vector<Instance> instances = {
      make_instance(1001, 50, 15.0, 2.0),
      make_instance(1002, 20, 6.0, 1.5),
      make_instance(1003, 35, 10.0, 1.0),
  };
  core::CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  auto solver = std::make_shared<core::CubisSolver>(opt);

  // Sequential oracle: fresh solve per instance, no workspace.
  std::vector<core::DefenderSolution> want;
  for (const Instance& inst : instances) {
    want.push_back(solver->solve({*inst.game, *inst.bounds}));
  }

  EngineOptions eopt;
  eopt.workers = 8;
  eopt.queue_capacity = 64;
  SolveEngine eng(solver, eopt);
  constexpr int kJobs = 48;
  std::vector<std::future<JobOutcome>> futures;
  futures.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    futures.push_back(eng.submit(job_for(instances[j % instances.size()])));
  }
  for (int j = 0; j < kJobs; ++j) {
    JobOutcome out = futures[static_cast<std::size_t>(j)].get();
    ASSERT_EQ(out.status, JobStatus::kCompleted) << out.error;
    expect_identical(out.solution, want[j % instances.size()]);
  }
  eng.shutdown();
}

// Same guarantee with the MILP step backend, whose per-round skeleton and
// warm-start basis are the most reuse-sensitive state in the workspace.
TEST(Engine, MilpBackendMatchesSequentialAcrossShapes) {
  const std::vector<Instance> instances = {
      make_instance(2001, 12, 4.0, 1.5),
      make_instance(2002, 8, 2.5, 2.0),
  };
  core::CubisOptions opt;
  opt.segments = 6;
  opt.epsilon = 1e-2;
  opt.backend = core::StepBackend::kMilp;
  auto solver = std::make_shared<core::CubisSolver>(opt);

  std::vector<core::DefenderSolution> want;
  for (const Instance& inst : instances) {
    want.push_back(solver->solve({*inst.game, *inst.bounds}));
  }

  EngineOptions eopt;
  eopt.workers = 2;
  SolveEngine eng(solver, eopt);
  std::vector<std::future<JobOutcome>> futures;
  for (int j = 0; j < 12; ++j) {
    futures.push_back(eng.submit(job_for(instances[j % 2])));
  }
  for (int j = 0; j < 12; ++j) {
    JobOutcome out = futures[static_cast<std::size_t>(j)].get();
    ASSERT_EQ(out.status, JobStatus::kCompleted) << out.error;
    expect_identical(out.solution, want[static_cast<std::size_t>(j % 2)]);
  }
}

// Backpressure: with the single worker pinned and the queue full,
// try_submit must reject (and count the rejection) rather than block or
// grow the queue — the in-process mirror of the HTTP exporter's 503.
TEST(Engine, TrySubmitRejectsWhenQueueFull) {
  Gate gate;
  auto solver = std::make_shared<StallSolver>(&gate);
  const Instance inst = make_instance(3001, 5, 2.0, 1.0);

  obs::Counter& rejected =
      obs::Registry::global().counter("engine.jobs_rejected_total");
  const std::int64_t rejected_before = rejected.value();

  EngineOptions eopt;
  eopt.workers = 1;
  eopt.queue_capacity = 2;
  SolveEngine eng(solver, eopt);

  auto running = eng.try_submit(job_for(inst));
  ASSERT_TRUE(running.has_value());
  gate.wait_entered(1);  // worker is now pinned inside solve()

  auto q1 = eng.try_submit(job_for(inst));
  auto q2 = eng.try_submit(job_for(inst));
  ASSERT_TRUE(q1.has_value());
  ASSERT_TRUE(q2.has_value());
  EXPECT_EQ(eng.queue_depth(), 2u);

  auto overflow = eng.try_submit(job_for(inst));
  EXPECT_FALSE(overflow.has_value());
  EXPECT_EQ(rejected.value(), rejected_before + 1);

  gate.release();
  EXPECT_EQ(running->get().status, JobStatus::kCompleted);
  EXPECT_EQ(q1->get().status, JobStatus::kCompleted);
  EXPECT_EQ(q2->get().status, JobStatus::kCompleted);
}

// cancel_all: queued jobs drain as kCancelled (their futures still
// resolve), the running solve's budget trips, and no new work is admitted.
TEST(Engine, CancelAllDrainsQueueAndRejectsNewWork) {
  Gate gate;
  auto solver = std::make_shared<StallSolver>(&gate);
  const Instance inst = make_instance(3002, 5, 2.0, 1.0);

  EngineOptions eopt;
  eopt.workers = 1;
  eopt.queue_capacity = 8;
  SolveEngine eng(solver, eopt);

  auto running = eng.try_submit(job_for(inst));
  ASSERT_TRUE(running.has_value());
  gate.wait_entered(1);
  auto queued = eng.try_submit(job_for(inst));
  ASSERT_TRUE(queued.has_value());

  eng.cancel_all();
  EXPECT_TRUE(eng.cancelled());
  // Every worker budget is tripped, including the pinned one's.
  EXPECT_TRUE(eng.worker_budget(0).cancel_requested());

  EXPECT_FALSE(eng.try_submit(job_for(inst)).has_value());
  EXPECT_THROW(eng.submit(job_for(inst)), std::runtime_error);

  gate.release();
  EXPECT_EQ(running->get().status, JobStatus::kCompleted);
  EXPECT_EQ(queued->get().status, JobStatus::kCancelled);
}

// Shutdown drains: jobs already admitted complete before workers exit,
// and the destructor path is idempotent with explicit shutdown.
TEST(Engine, ShutdownDrainsAdmittedJobs) {
  const Instance inst = make_instance(3003, 10, 3.0, 1.0);
  core::CubisOptions opt;
  opt.segments = 5;
  auto solver = std::make_shared<core::CubisSolver>(opt);

  std::vector<std::future<JobOutcome>> futures;
  {
    SolveEngine eng(solver, {2, 16, 0.0, 0});
    for (int j = 0; j < 8; ++j) {
      futures.push_back(eng.submit(job_for(inst)));
    }
    eng.shutdown();  // explicit; destructor repeats it harmlessly
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, JobStatus::kCompleted);
  }
}

// Metrics contract: accepted/completed counters and the queue-depth gauge
// reconcile with the work actually done (deltas — the registry is global).
TEST(Engine, MetricsAccountForEveryJob) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& accepted = reg.counter("engine.jobs_accepted_total");
  obs::Counter& completed = reg.counter("engine.jobs_completed_total");
  const std::int64_t accepted_before = accepted.value();
  const std::int64_t completed_before = completed.value();

  const Instance inst = make_instance(3004, 8, 2.0, 1.0);
  core::CubisOptions opt;
  opt.segments = 5;
  auto solver = std::make_shared<core::CubisSolver>(opt);
  SolveEngine eng(solver, {2, 16, 0.0, 0});
  std::vector<std::future<JobOutcome>> futures;
  for (int j = 0; j < 6; ++j) futures.push_back(eng.submit(job_for(inst)));
  for (auto& f : futures) EXPECT_EQ(f.get().status, JobStatus::kCompleted);
  eng.shutdown();

  EXPECT_EQ(accepted.value(), accepted_before + 6);
  EXPECT_EQ(completed.value(), completed_before + 6);
  EXPECT_EQ(reg.gauge("engine.queue_depth").value(), 0.0);
}

// Per-job budget: a deadline on the job (not the engine default) trips the
// solve, which completes with a budget status rather than failing.
TEST(Engine, PerJobDeadlineProducesBudgetStatus) {
  const Instance inst = make_instance(3005, 60, 18.0, 2.0);
  core::CubisOptions opt;
  opt.segments = 25;
  opt.epsilon = 1e-9;  // effectively unbounded without the deadline
  auto solver = std::make_shared<core::CubisSolver>(opt);
  SolveEngine eng(solver, {1, 4, 0.0, 0});
  SolveJob job = job_for(inst);
  job.deadline_seconds = 1e-9;
  JobOutcome out = eng.submit(std::move(job)).get();
  ASSERT_EQ(out.status, JobStatus::kCompleted);
  EXPECT_EQ(out.solution.status, SolverStatus::kDeadlineExceeded);
}

TEST(Engine, NullSolverThrows) {
  EXPECT_THROW(SolveEngine(nullptr, {}), InvalidModelError);
}

// Per-job tracing: with collection on, every job run by a multi-worker
// engine leaves an "engine.queue_wait" and an "engine.execute" event
// tagged with its job id, mergeable across workers in one Chrome trace.
TEST(Engine, TraceEventsKeyedByJobIdAcrossWorkers) {
#if !CUBISG_OBS_ENABLED
  GTEST_SKIP() << "tracing compiled out (CUBISG_OBS=OFF)";
#else
  const Instance inst = make_instance(4001, 12, 4.0, 1.5);
  core::CubisOptions opt;
  opt.segments = 5;
  auto solver = std::make_shared<core::CubisSolver>(opt);

  const std::int64_t waits_before = obs::Registry::global()
                                        .histogram("engine.queue_wait_seconds")
                                        .count();
  obs::set_trace_enabled(true);
  obs::clear_trace();
  constexpr int kJobs = 12;
  std::vector<std::uint64_t> job_ids;
  {
    SolveEngine eng(solver, {4, 16, 0.0, 0});
    std::vector<std::future<JobOutcome>> futures;
    for (int j = 0; j < kJobs; ++j) {
      futures.push_back(eng.submit(job_for(inst)));
    }
    for (auto& f : futures) {
      JobOutcome out = f.get();
      ASSERT_EQ(out.status, JobStatus::kCompleted) << out.error;
      job_ids.push_back(out.id);
    }
    eng.shutdown();
  }
  obs::set_trace_enabled(false);

  // The queue-wait histogram saw every job.
  EXPECT_EQ(obs::Registry::global()
                .histogram("engine.queue_wait_seconds")
                .count(),
            waits_before + kJobs);

  std::map<std::uint64_t, int> queue_waits;
  std::map<std::uint64_t, int> executes;
  std::map<int, std::int64_t> last_end_by_tid;
  for (const obs::TraceEvent& e : obs::collect_trace_events()) {
    if (e.name == std::string("engine.queue_wait")) ++queue_waits[e.job];
    if (e.name == std::string("engine.execute")) ++executes[e.job];
    // Completion timestamps stay monotonic within each worker thread.
    const std::int64_t end_ns = e.start_ns + e.dur_ns;
    auto it = last_end_by_tid.find(e.tid);
    if (it != last_end_by_tid.end()) EXPECT_GE(end_ns, it->second);
    last_end_by_tid[e.tid] = end_ns;
  }
  for (std::uint64_t id : job_ids) {
    EXPECT_EQ(queue_waits[id], 1) << "job " << id;
    EXPECT_EQ(executes[id], 1) << "job " << id;
  }
  obs::clear_trace();
#endif
}

// Flight recorder: with a 0-second SLO armed, every engine solve is
// "slow" — entries carry the job id, worker, phase breakdown and the
// solver's published report, and the slow-solve counter advances.
TEST(Engine, FlightRecorderCapturesSlowSolves) {
#if !CUBISG_OBS_ENABLED
  GTEST_SKIP() << "flight recorder compiled out (CUBISG_OBS=OFF)";
#else
  const Instance inst = make_instance(4002, 10, 3.0, 1.0);
  core::CubisOptions opt;
  opt.segments = 5;
  auto solver = std::make_shared<core::CubisSolver>(opt);

  obs::FlightRecorder& rec = obs::FlightRecorder::global();
  rec.clear();
  rec.arm(0.0);  // every solve meets the SLO threshold
  const std::int64_t slow_before = obs::Registry::global()
                                       .counter("engine.slow_solves_total")
                                       .value();
  std::uint64_t job_id = 0;
  {
    SolveEngine eng(solver, {2, 8, 0.0, 0});
    SolveJob job = job_for(inst);
    job.tag = "flight-test";
    JobOutcome out = eng.submit(std::move(job)).get();
    ASSERT_EQ(out.status, JobStatus::kCompleted) << out.error;
    job_id = out.id;
    eng.shutdown();
  }
  rec.disarm();

  EXPECT_EQ(obs::Registry::global()
                .counter("engine.slow_solves_total")
                .value(),
            slow_before + 1);
  const std::vector<obs::FlightEntry> entries = rec.recent();
  ASSERT_EQ(entries.size(), 1u);
  const obs::FlightEntry& entry = entries.front();
  EXPECT_EQ(entry.job_id, job_id);
  EXPECT_EQ(entry.tag, "flight-test");
  EXPECT_GT(entry.solve_seconds, 0.0);
  EXPECT_DOUBLE_EQ(entry.slo_seconds, 0.0);
  EXPECT_TRUE(entry.has_report);
  EXPECT_EQ(entry.report.solver, "cubis-dp");
  EXPECT_FALSE(entry.phases.empty());
  rec.clear();
#endif
}

}  // namespace
}  // namespace cubisg::engine

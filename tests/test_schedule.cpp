// Tests for the scheduled-patrol extension (grouped budgets), the QR-lambda
// bounds, and the ORIGAMI SSE algorithm.
#include <cmath>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/origami.hpp"
#include "core/sse.hpp"
#include "core/step_solver.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "games/schedule.hpp"

namespace cubisg {
namespace {

using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

// ---- grouped step solver ---------------------------------------------

TEST(GroupedStep, MatchesIndependentDps) {
  // Two groups with distinct functions: the grouped solve must equal the
  // sum of the per-group solves.
  auto up = [](double x) { return 2.0 * x; };
  auto down = [](double x) { return -x; };
  std::vector<core::PiecewiseLinear> phi{
      core::PiecewiseLinear(up, 4), core::PiecewiseLinear(down, 4),
      core::PiecewiseLinear(up, 4), core::PiecewiseLinear(up, 4)};
  std::vector<std::size_t> groups{0, 0, 1, 1};
  std::vector<double> budgets{1.0, 1.0};
  auto grouped = core::solve_step_dp_grouped(phi, groups, budgets);

  auto g0 = core::solve_step_dp({phi[0], phi[1]}, 1.0);
  auto g1 = core::solve_step_dp({phi[2], phi[3]}, 1.0);
  EXPECT_NEAR(grouped.objective, g0.objective + g1.objective, 1e-12);
  EXPECT_NEAR(grouped.x[0], g0.x[0], 1e-12);
  EXPECT_NEAR(grouped.x[3], g1.x[1], 1e-12);
}

TEST(GroupedStep, BudgetBindsPerGroup) {
  // All targets want coverage; each group only has one unit.
  auto up = [](double x) { return x; };
  std::vector<core::PiecewiseLinear> phi(4, core::PiecewiseLinear(up, 5));
  std::vector<std::size_t> groups{0, 0, 1, 1};
  std::vector<double> budgets{1.0, 1.0};
  auto r = core::solve_step_dp_grouped(phi, groups, budgets);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-12);
  EXPECT_NEAR(r.x[2] + r.x[3], 1.0, 1e-12);
}

TEST(GroupedStep, Validation) {
  auto up = [](double x) { return x; };
  std::vector<core::PiecewiseLinear> phi(2, core::PiecewiseLinear(up, 4));
  EXPECT_THROW(core::solve_step_dp_grouped(phi, {0}, {1.0}),
               InvalidModelError);  // groups size mismatch
  EXPECT_THROW(core::solve_step_dp_grouped(phi, {0, 5}, {1.0}),
               InvalidModelError);  // group id out of range
  EXPECT_THROW(core::solve_step_dp_grouped(phi, {0, 0}, {}),
               InvalidModelError);  // no budgets
}

// ---- scheduled games ----------------------------------------------------

games::UncertainGame base_game(std::uint64_t seed) {
  Rng rng(seed);
  return games::random_uncertain_game(rng, 4, 2.0, 1.0);
}

TEST(Schedule, UnrollShapes) {
  auto base = base_game(1);
  auto sched = games::unroll_schedule(base, 3, 2.0);
  EXPECT_EQ(sched.flattened.game.num_targets(), 12u);
  EXPECT_DOUBLE_EQ(sched.flattened.game.resources(), 6.0);
  EXPECT_EQ(sched.locations, 4u);
  EXPECT_EQ(sched.slots, 3u);
  EXPECT_EQ(sched.flat_index(2, 1), 6u);
  EXPECT_EQ(sched.group_of(6), 1u);
  auto groups = sched.target_groups();
  EXPECT_EQ(groups.size(), 12u);
  EXPECT_EQ(groups[11], 2u);
  auto budgets = sched.group_budgets();
  ASSERT_EQ(budgets.size(), 3u);
  EXPECT_DOUBLE_EQ(budgets[0], 2.0);
}

TEST(Schedule, RoundTripProperties) {
  // flat_index / group_of are inverses over the whole grid, the groups
  // vector agrees with group_of, and the per-slot budgets sum to the
  // flattened game's resources.
  auto base = base_game(9);
  auto sched = games::unroll_schedule(base, 3, 2.0);
  const auto groups = sched.target_groups();
  for (std::size_t s = 0; s < sched.slots; ++s) {
    for (std::size_t l = 0; l < sched.locations; ++l) {
      const std::size_t flat = sched.flat_index(l, s);
      ASSERT_LT(flat, sched.flattened.game.num_targets());
      EXPECT_EQ(sched.group_of(flat), s);
      EXPECT_EQ(groups[flat], s);
      // Recover the location: flat_index is slot-major.
      EXPECT_EQ(flat % sched.locations, l);
    }
  }
  const auto budgets = sched.group_budgets();
  double total = 0.0;
  for (double b : budgets) total += b;
  EXPECT_NEAR(total, sched.flattened.game.resources(), 1e-12);

  // The CoverageSpace view carries the same shape.
  const games::CoverageSpace space = sched.coverage_space();
  EXPECT_EQ(space.num_targets(), sched.flattened.game.num_targets());
  EXPECT_EQ(space.num_groups(), sched.slots);
  EXPECT_NEAR(space.total_budget(), sched.flattened.game.resources(),
              1e-12);
  for (std::size_t flat = 0; flat < space.num_targets(); ++flat) {
    EXPECT_EQ(space.group_of(flat), sched.group_of(flat));
  }
}

TEST(Schedule, RewardDriftScalesSlots) {
  auto base = base_game(2);
  auto sched = games::unroll_schedule(base, 2, 1.0, {1.0, 2.0});
  for (std::size_t l = 0; l < 4; ++l) {
    const double r0 =
        sched.flattened.game.target(sched.flat_index(l, 0)).attacker_reward;
    const double r1 =
        sched.flattened.game.target(sched.flat_index(l, 1)).attacker_reward;
    EXPECT_NEAR(r1, 2.0 * r0, 1e-12);
    // Interval endpoints scale too.
    EXPECT_NEAR(sched.flattened.attacker_intervals[sched.flat_index(l, 1)]
                    .attacker_reward.hi(),
                2.0 * sched.flattened.attacker_intervals[sched.flat_index(
                          l, 0)].attacker_reward.hi(),
                1e-12);
  }
}

TEST(Schedule, UnrollValidation) {
  auto base = base_game(3);
  EXPECT_THROW(games::unroll_schedule(base, 0, 1.0), InvalidModelError);
  EXPECT_THROW(games::unroll_schedule(base, 2, 1.0, {1.0}),
               InvalidModelError);
  EXPECT_THROW(games::unroll_schedule(base, 2, 1.0, {1.0, -1.0}),
               InvalidModelError);
}

TEST(Schedule, CubisRespectsPerSlotBudgets) {
  auto base = base_game(4);
  auto sched = games::unroll_schedule(base, 3, 1.0, {1.0, 1.5, 0.7});
  SuqrIntervalBounds bounds(SuqrWeightIntervals{},
                            sched.flattened.attacker_intervals);
  core::CubisOptions opt;
  opt.segments = 10;
  opt.target_groups = sched.target_groups();
  opt.group_budgets = sched.group_budgets();
  core::DefenderSolution sol =
      core::CubisSolver(opt).solve({sched.flattened.game, bounds});
  ASSERT_TRUE(sol.ok());
  for (std::size_t d = 0; d < 3; ++d) {
    double used = 0.0;
    for (std::size_t l = 0; l < 4; ++l) {
      used += sol.strategy[sched.flat_index(l, d)];
    }
    EXPECT_LE(used, 1.0 + 1e-9) << "slot " << d;
  }
}

TEST(Schedule, GroupBudgetValidationInSolver) {
  auto base = base_game(5);
  auto sched = games::unroll_schedule(base, 2, 1.0);
  SuqrIntervalBounds bounds(SuqrWeightIntervals{},
                            sched.flattened.attacker_intervals);
  core::SolveContext ctx{sched.flattened.game, bounds};
  core::CubisOptions bad;
  bad.group_budgets = {1.0, 1.0};
  bad.target_groups = {0, 1};  // wrong size (8 targets)
  EXPECT_THROW(core::CubisSolver(bad).solve(ctx), InvalidModelError);
  core::CubisOptions bad2;
  bad2.group_budgets = {5.0, 5.0};  // does not sum to game resources
  bad2.target_groups = sched.target_groups();
  EXPECT_THROW(core::CubisSolver(bad2).solve(ctx), InvalidModelError);
}

TEST(Schedule, UniformDriftMatchesSingleSlotReplication) {
  // With no drift, the optimal per-slot coverage equals the single-slot
  // optimum replicated (slots are identical and independent).
  auto base = base_game(6);
  SuqrIntervalBounds base_bounds(SuqrWeightIntervals{},
                                 base.attacker_intervals);
  core::CubisOptions single;
  single.segments = 10;
  auto sol1 = core::CubisSolver(single).solve({base.game, base_bounds});

  auto sched = games::unroll_schedule(base, 2, 2.0);
  SuqrIntervalBounds bounds(SuqrWeightIntervals{},
                            sched.flattened.attacker_intervals);
  core::CubisOptions opt;
  opt.segments = 10;
  opt.target_groups = sched.target_groups();
  opt.group_budgets = sched.group_budgets();
  auto sol2 = core::CubisSolver(opt).solve({sched.flattened.game, bounds});
  ASSERT_TRUE(sol2.ok());
  // Worst case: the attacker has twice as many (identical) options, so
  // the scheduled worst case equals the single-slot one (up to grid noise).
  EXPECT_NEAR(sol2.worst_case_utility, sol1.worst_case_utility, 0.4);
}

// ---- QR-lambda bounds ----------------------------------------------------

TEST(QrLambdaBounds, OrderedPositiveDecreasing) {
  auto ug = games::table1_game();
  behavior::QrLambdaBounds b(Interval(0.2, 1.2), ug.attacker_intervals);
  for (std::size_t i = 0; i < 2; ++i) {
    double pl = b.lower(i, 0.0), pu = b.upper(i, 0.0);
    EXPECT_GT(pl, 0.0);
    EXPECT_LE(pl, pu);
    for (double x = 0.1; x <= 1.0; x += 0.1) {
      EXPECT_GT(b.lower(i, x), 0.0);
      EXPECT_LE(b.lower(i, x), b.upper(i, x) + 1e-15);
      EXPECT_LE(b.lower(i, x), pl + 1e-12);  // non-increasing
      EXPECT_LE(b.upper(i, x), pu + 1e-12);
      pl = b.lower(i, x);
      pu = b.upper(i, x);
    }
  }
}

TEST(QrLambdaBounds, ContainsEverySampledQrModel) {
  auto ug = games::table1_game();
  Interval lambda(0.3, 1.0);
  behavior::QrLambdaBounds b(lambda, ug.attacker_intervals);
  Rng rng(41);
  for (int s = 0; s < 64; ++s) {
    const double lam = rng.uniform(lambda.lo(), lambda.hi());
    // Sample payoffs inside the boxes and form the exact QR value.
    for (double x : {0.0, 0.3, 0.7, 1.0}) {
      for (std::size_t i = 0; i < 2; ++i) {
        const auto& iv = ug.attacker_intervals[i];
        const double ra = rng.uniform(iv.attacker_reward.lo(),
                                      iv.attacker_reward.hi());
        const double pa = rng.uniform(iv.attacker_penalty.lo(),
                                      iv.attacker_penalty.hi());
        const double ua = x * pa + (1.0 - x) * ra;
        const double f = std::exp(lam * ua);
        EXPECT_GE(f, b.lower(i, x) * (1 - 1e-12));
        EXPECT_LE(f, b.upper(i, x) * (1 + 1e-12));
      }
    }
  }
}

TEST(QrLambdaBounds, WorksInsideCubis) {
  auto ug = games::table1_game();
  behavior::QrLambdaBounds b(Interval(0.2, 1.0), ug.attacker_intervals);
  core::CubisOptions opt;
  opt.segments = 20;
  auto sol = core::CubisSolver(opt).solve({ug.game, b});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(std::isfinite(sol.worst_case_utility));
  // Must beat the uniform strategy.
  EXPECT_GE(sol.worst_case_utility,
            core::worst_case_utility(ug.game, b,
                                     std::vector<double>{0.5, 0.5}) -
                0.3);
}

TEST(QrLambdaBounds, Validation) {
  auto ug = games::table1_game();
  EXPECT_THROW(behavior::QrLambdaBounds(Interval(0.0, 1.0),
                                        ug.attacker_intervals),
               InvalidModelError);
  EXPECT_THROW(behavior::QrLambdaBounds(Interval(0.5, 1.0), {}),
               InvalidModelError);
}

// ---- ORIGAMI ---------------------------------------------------------

struct OrigamiSeed {
  std::uint64_t value;
};
class OrigamiTest : public ::testing::TestWithParam<OrigamiSeed> {};

TEST_P(OrigamiTest, MatchesMultipleLpsSse) {
  Rng rng(GetParam().value);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t t = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    const double r = 1.0 + std::floor(rng.uniform(0.0, t - 1.0));
    auto g = games::covariant_game(rng, t, r, rng.uniform(0.0, 1.0));
    auto lp = core::solve_sse(g);
    auto ori = core::solve_origami(g);
    ASSERT_EQ(lp.status, SolverStatus::kOptimal);
    ASSERT_EQ(ori.status, SolverStatus::kOptimal);
    EXPECT_NEAR(ori.defender_utility, lp.defender_utility, 1e-5)
        << "trial " << trial << " T=" << t << " R=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrigamiTest,
                         ::testing::Values(OrigamiSeed{301}, OrigamiSeed{302},
                                           OrigamiSeed{303}),
                         [](const ::testing::TestParamInfo<OrigamiSeed>& i) {
                           return "seed" + std::to_string(i.param.value);
                         });

TEST(Origami, AttackSetIsIndifferent) {
  Rng rng(310);
  auto g = games::random_game(rng, 8, 3.0);
  auto ori = core::solve_origami(g);
  ASSERT_EQ(ori.status, SolverStatus::kOptimal);
  for (std::size_t i : ori.attack_set) {
    const double ua = g.attacker_utility(i, ori.strategy[i]);
    // Saturated targets may sit below the common utility; others match it.
    if (ori.strategy[i] < 1.0 - 1e-9) {
      EXPECT_NEAR(ua, ori.attacker_utility, 1e-7) << "target " << i;
    } else {
      EXPECT_LE(ua, ori.attacker_utility + 1e-7);
    }
  }
  // Targets outside the set are strictly less attractive.
  for (std::size_t i = 0; i < 8; ++i) {
    if (std::find(ori.attack_set.begin(), ori.attack_set.end(), i) ==
        ori.attack_set.end()) {
      EXPECT_LE(g.attacker_utility(i, ori.strategy[i]),
                ori.attacker_utility + 1e-7);
      EXPECT_NEAR(ori.strategy[i], 0.0, 1e-12);
    }
  }
}

TEST(Origami, UsesFullBudgetWhenBeneficial) {
  Rng rng(311);
  auto g = games::random_game(rng, 6, 2.0);
  auto ori = core::solve_origami(g);
  double total = 0.0;
  for (double xi : ori.strategy) total += xi;
  EXPECT_LE(total, 2.0 + 1e-9);
}

}  // namespace
}  // namespace cubisg

// Tests for the solver-comparison harness and pseudo-cost branching.
#include <string>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/evaluation.hpp"
#include "lp/model.hpp"
#include "milp/branch_and_bound.hpp"

namespace cubisg {
namespace {

TEST(Evaluation, ProducesOneRowPerSolver) {
  core::EvaluationSpec spec;
  core::SolverSpec cubis;
  cubis.name = "cubis";
  cubis.segments = 10;
  core::SolverSpec midpoint;
  midpoint.name = "midpoint";
  midpoint.segments = 10;
  core::SolverSpec uniform;
  uniform.name = "uniform";
  spec.solvers = {cubis, midpoint, uniform};
  spec.games = 3;
  spec.targets = 5;
  spec.resources = 2.0;
  auto rows = core::evaluate_solvers(spec);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].solver, "cubis");
  EXPECT_EQ(rows[2].solver, "uniform");
  // CUBIS dominates uniform on the certified worst case.
  EXPECT_GT(rows[0].worst_mean, rows[2].worst_mean);
}

TEST(Evaluation, DeterministicForSpec) {
  core::EvaluationSpec spec;
  core::SolverSpec maximin;
  maximin.name = "maximin";
  spec.solvers = {maximin};
  spec.games = 2;
  spec.targets = 4;
  spec.resources = 1.0;
  auto a = core::evaluate_solvers(spec);
  auto b = core::evaluate_solvers(spec);
  EXPECT_DOUBLE_EQ(a[0].worst_mean, b[0].worst_mean);
  EXPECT_DOUBLE_EQ(a[0].worst_std, b[0].worst_std);
}

TEST(Evaluation, SampledScoringWhenRequested) {
  core::EvaluationSpec spec;
  core::SolverSpec cubis;
  cubis.name = "cubis";
  cubis.segments = 10;
  core::SolverSpec bayes;
  bayes.name = "bayesian";
  bayes.num_starts = 2;
  spec.solvers = {cubis, bayes};
  spec.games = 2;
  spec.targets = 5;
  spec.resources = 2.0;
  spec.sample_types = 30;
  auto rows = core::evaluate_solvers(spec);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) {
    EXPECT_LE(r.sampled_min_mean, r.sampled_mean_mean + 1e-9);
    // The certified worst case never exceeds the sampled minimum.
    EXPECT_LE(r.worst_mean, r.sampled_min_mean + 1e-6);
  }
}

TEST(Evaluation, MarkdownRendering) {
  core::EvaluationSpec spec;
  core::SolverSpec uniform;
  uniform.name = "uniform";
  spec.solvers = {uniform};
  spec.games = 1;
  spec.targets = 3;
  spec.resources = 1.0;
  auto rows = core::evaluate_solvers(spec);
  const std::string md = core::to_markdown(rows, /*with_samples=*/false);
  EXPECT_NE(md.find("| solver |"), std::string::npos);
  EXPECT_NE(md.find("| uniform |"), std::string::npos);
}

TEST(Evaluation, Validation) {
  core::EvaluationSpec empty;
  EXPECT_THROW(core::evaluate_solvers(empty), InvalidModelError);
  core::EvaluationSpec zero_games;
  core::SolverSpec uniform;
  uniform.name = "uniform";
  zero_games.solvers = {uniform};
  zero_games.games = 0;
  EXPECT_THROW(core::evaluate_solvers(zero_games), InvalidModelError);
}

// ---- pseudo-cost branching ------------------------------------------

TEST(PseudoCost, MatchesMostFractionalOptimum) {
  Rng rng(771);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(6, 14));
    lp::Model m;
    m.set_objective_sense(lp::Objective::kMaximize);
    int row = m.add_row("cap", lp::Sense::kLe, n / 2.5);
    for (int j = 0; j < n; ++j) {
      int col = m.add_col("b" + std::to_string(j), 0.0, 1.0,
                          rng.uniform(0.5, 3.0));
      m.set_integer(col);
      m.set_coeff(row, col, rng.uniform(0.2, 1.0));
    }
    milp::MilpSolution mf = milp::solve_milp(m);
    milp::MilpOptions popt;
    popt.branching = milp::BranchingRule::kPseudoCost;
    milp::MilpSolution pc = milp::solve_milp(m, popt);
    ASSERT_TRUE(mf.optimal());
    ASSERT_TRUE(pc.optimal()) << to_string(pc.status);
    EXPECT_NEAR(mf.objective, pc.objective, 1e-7) << "trial " << trial;
  }
}

TEST(PseudoCost, SignQueriesStillSound) {
  Rng rng(772);
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  int row = m.add_row("cap", lp::Sense::kLe, 4.0);
  for (int j = 0; j < 12; ++j) {
    int col = m.add_col("b" + std::to_string(j), 0.0, 1.0,
                        rng.uniform(0.5, 2.0));
    m.set_integer(col);
    m.set_coeff(row, col, rng.uniform(0.3, 1.0));
  }
  milp::MilpSolution base = milp::solve_milp(m);
  ASSERT_TRUE(base.optimal());
  milp::MilpOptions opt;
  opt.branching = milp::BranchingRule::kPseudoCost;
  opt.sign_threshold = base.objective - 0.5;
  EXPECT_EQ(milp::solve_milp(m, opt).status,
            SolverStatus::kEarlyPositive);
  opt.sign_threshold = base.objective + 0.5;
  EXPECT_EQ(milp::solve_milp(m, opt).status,
            SolverStatus::kEarlyNegative);
}

}  // namespace
}  // namespace cubisg

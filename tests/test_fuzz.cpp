// Randomized stress tests: many small random instances pushed through
// independent implementations that must agree.  These are the suite's
// last line of defense against structural bugs that slip past the
// hand-written cases.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "behavior/scenario.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/registry.hpp"
#include "core/worst_case.hpp"
#include "games/comb_sampling.hpp"
#include "games/generators.hpp"
#include "lp/io.hpp"
#include "lp/presolve.hpp"
#include "milp/branch_and_bound.hpp"

namespace cubisg {
namespace {

struct FuzzSeed {
  std::uint64_t value;
};

class FuzzTest : public ::testing::TestWithParam<FuzzSeed> {};

TEST_P(FuzzTest, CubisBackendsAgreeOnTinyGames) {
  // Full CUBIS solves, DP vs paper-MILP step backend, on tiny instances
  // where both are fast.  Certified values must agree within the shared
  // O(eps + 1/K) budget, and the MILP lb must dominate the DP lb.
  Rng rng(GetParam().value);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t t = 2 + static_cast<std::size_t>(rng.uniform_int(0, 1));
    auto ug = games::random_uncertain_game(rng, t, 1.0,
                                           rng.uniform(0.0, 1.5));
    behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                        ug.attacker_intervals);
    core::SolveContext ctx{ug.game, bounds};
    core::CubisOptions dp;
    dp.segments = 5;
    dp.epsilon = 0.05;
    core::CubisOptions milp = dp;
    milp.backend = core::StepBackend::kMilp;
    auto a = core::CubisSolver(dp).solve(ctx);
    auto b = core::CubisSolver(milp).solve(ctx);
    ASSERT_TRUE(a.ok()) << trial;
    ASSERT_TRUE(b.ok()) << trial;
    EXPECT_GE(b.lb, a.lb - 1e-6) << "trial " << trial;
    const double scale = ug.game.max_defender_reward() -
                         ug.game.min_defender_penalty();
    EXPECT_NEAR(a.worst_case_utility, b.worst_case_utility,
                2.0 * scale / 5.0 + 0.2)
        << "trial " << trial;
  }
}

TEST_P(FuzzTest, ParallelMilpMatchesSequentialOnRandomModels) {
  Rng rng(GetParam().value ^ 0x10);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(3, 8));
    lp::Model m;
    m.set_objective_sense(rng.uniform() < 0.5 ? lp::Objective::kMinimize
                                              : lp::Objective::kMaximize);
    for (int j = 0; j < n; ++j) {
      int col = m.add_col("b" + std::to_string(j), 0.0, 1.0,
                          rng.uniform(-2.0, 2.0));
      if (rng.uniform() < 0.7) m.set_integer(col);
    }
    for (int r = 0; r < 2; ++r) {
      int row = m.add_row("r" + std::to_string(r),
                          rng.uniform() < 0.5 ? lp::Sense::kLe
                                              : lp::Sense::kGe,
                          rng.uniform(-2.0, 3.0));
      for (int j = 0; j < n; ++j) {
        m.set_coeff(row, j, rng.uniform(-1.5, 1.5));
      }
    }
    milp::MilpSolution seq = milp::solve_milp(m);
    milp::MilpOptions popt;
    popt.num_workers = 3;
    milp::MilpSolution par = milp::solve_milp(m, popt);
    ASSERT_EQ(seq.status == SolverStatus::kInfeasible,
              par.status == SolverStatus::kInfeasible)
        << "trial " << trial;
    if (seq.optimal()) {
      ASSERT_TRUE(par.optimal()) << trial << " " << to_string(par.status);
      EXPECT_NEAR(seq.objective, par.objective, 1e-6) << "trial " << trial;
    }
  }
}

TEST_P(FuzzTest, PresolveAgreesWithPlainSolveOnStructuredModels) {
  // Models with deliberate presolve bait: fixed columns, singleton rows,
  // empty rows and columns.
  Rng rng(GetParam().value ^ 0x20);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    lp::Model m;
    m.set_objective_sense(rng.uniform() < 0.5 ? lp::Objective::kMinimize
                                              : lp::Objective::kMaximize);
    for (int j = 0; j < n; ++j) {
      double lo = rng.uniform(-2.0, 0.0);
      double hi = lo + rng.uniform(0.0, 3.0);
      if (rng.uniform() < 0.3) hi = lo;                    // fixed
      m.add_col("x" + std::to_string(j), lo, hi, rng.uniform(-2.0, 2.0));
    }
    const int rows = static_cast<int>(rng.uniform_int(1, 4));
    for (int r = 0; r < rows; ++r) {
      const double pick = rng.uniform();
      int row = m.add_row("r" + std::to_string(r),
                          pick < 0.4   ? lp::Sense::kLe
                          : pick < 0.8 ? lp::Sense::kGe
                                       : lp::Sense::kEq,
                          rng.uniform(-3.0, 3.0));
      const int fill = static_cast<int>(rng.uniform_int(0, n));
      for (int j = 0; j < fill; ++j) {
        m.set_coeff(row, j, rng.uniform(-2.0, 2.0));
      }
    }
    lp::LpSolution plain = lp::solve_lp(m);
    lp::LpSolution pres = lp::solve_lp_presolved(m);
    ASSERT_EQ(plain.status == SolverStatus::kInfeasible,
              pres.status == SolverStatus::kInfeasible)
        << "trial " << trial;
    if (plain.optimal() && pres.optimal()) {
      EXPECT_NEAR(plain.objective, pres.objective, 1e-6)
          << "trial " << trial;
      EXPECT_LE(m.max_violation(pres.x), 1e-7) << "trial " << trial;
    }
  }
}

TEST_P(FuzzTest, ScenarioAndModelRoundTripsAreLossless) {
  Rng rng(GetParam().value ^ 0x30);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t t = 1 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    behavior::Scenario s{
        games::random_uncertain_game(rng, t, rng.uniform(0.0, t * 1.0),
                                     rng.uniform(0.0, 3.0)),
        behavior::SuqrWeightIntervals{},
        rng.uniform() < 0.5 ? behavior::IntervalMode::kPaperCorners
                            : behavior::IntervalMode::kExactBox};
    std::stringstream ss;
    behavior::write_scenario(ss, s);
    behavior::Scenario back = behavior::read_scenario(ss);
    for (std::size_t i = 0; i < t; ++i) {
      EXPECT_EQ(back.game.game.target(i).attacker_reward,
                s.game.game.target(i).attacker_reward);
      EXPECT_EQ(back.game.attacker_intervals[i].attacker_penalty,
                s.game.attacker_intervals[i].attacker_penalty);
    }
  }
}

TEST_P(FuzzTest, CombMarginalsSurviveEveryFeasibleCoverage) {
  Rng rng(GetParam().value ^ 0x40);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t t = 1 + static_cast<std::size_t>(rng.uniform_int(0, 14));
    std::vector<double> x(t);
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    auto mix = games::comb_decomposition(x);
    auto marg = games::mixture_marginals(t, mix);
    for (std::size_t i = 0; i < t; ++i) {
      EXPECT_NEAR(marg[i], x[i], 1e-10) << "trial " << trial;
    }
  }
}

TEST_P(FuzzTest, WorstCaseEvaluatorTrioOnExtremeWidths) {
  // Push the evaluators through very wide and very narrow intervals.
  Rng rng(GetParam().value ^ 0x50);
  for (double width : {0.0, 0.1, 4.0, 8.0}) {
    const std::size_t t = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    auto ug = games::random_uncertain_game(rng, t, 1.0, width);
    behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                        ug.attacker_intervals);
    std::vector<double> x(t, 1.0 / static_cast<double>(t));
    const double a = core::worst_case_utility(
        ug.game, bounds, x, core::WorstCaseMethod::kClosedForm);
    const double c = core::worst_case_utility(
        ug.game, bounds, x, core::WorstCaseMethod::kDualRoot);
    EXPECT_NEAR(a, c, 1e-6 * (1.0 + std::abs(a))) << "width " << width;
    EXPECT_TRUE(std::isfinite(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(FuzzSeed{9001}, FuzzSeed{9002},
                                           FuzzSeed{9003}, FuzzSeed{9004}),
                         [](const ::testing::TestParamInfo<FuzzSeed>& i) {
                           return "seed" + std::to_string(i.param.value);
                         });

}  // namespace
}  // namespace cubisg

// Tests for the worst-case evaluators (the inner problem of maximin (5))
// and the H/G function machinery.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "behavior/suqr.hpp"
#include "common/rng.hpp"
#include "core/hfunction.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::core {
namespace {

using behavior::IntervalMode;
using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

struct WcFixture {
  games::UncertainGame ug;
  std::shared_ptr<SuqrIntervalBounds> bounds;
  WcFixture(std::uint64_t seed, std::size_t targets, double resources,
        double width)
      : ug(make(seed, targets, resources, width)),
        bounds(std::make_shared<SuqrIntervalBounds>(SuqrWeightIntervals{},
                                                    ug.attacker_intervals)) {}
  static games::UncertainGame make(std::uint64_t seed, std::size_t targets,
                                   double resources, double width) {
    Rng rng(seed);
    return games::random_uncertain_game(rng, targets, resources, width);
  }
};

TEST(HFunction, HandGConsistent) {
  PointData p;
  p.u = {1.0, -2.0};
  p.L = {0.5, 1.0};
  p.U = {2.0, 3.0};
  std::vector<double> beta{0.0, 0.5};
  // H = (sum L u - sum (U-L) beta) / sum L
  const double num = 0.5 * 1.0 + 1.0 * -2.0 - (1.5 * 0.0 + 2.0 * 0.5);
  EXPECT_NEAR(h_value(p, beta), num / 1.5, 1e-12);
  // G(c) is the numerator of H - c scaled by sum L.
  const double c = -1.0;
  EXPECT_NEAR(g_value(p, beta, c), (h_value(p, beta) - c) * 1.5, 1e-12);
}

TEST(HFunction, BetaOfProposition3) {
  PointData p;
  p.u = {1.0, -2.0, 0.5};
  p.L = {1.0, 1.0, 1.0};
  p.U = {2.0, 2.0, 2.0};
  auto beta = beta_of(p, 0.0);
  EXPECT_DOUBLE_EQ(beta[0], 0.0);   // u >= c
  EXPECT_DOUBLE_EQ(beta[1], 2.0);   // c - u = 2
  EXPECT_DOUBLE_EQ(beta[2], 0.0);
}

TEST(HFunction, GAtStrictlyDecreasingInC) {
  WcFixture s(1, 6, 2.0, 1.0);
  std::vector<double> x = games::uniform_strategy(6, 2.0);
  PointData p = evaluate_point(s.ug.game, *s.bounds, x);
  double prev = g_at(p, -10.0);
  for (double c = -9.5; c <= 10.0; c += 0.5) {
    const double cur = g_at(p, c);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(WorstCase, EvaluatorsAgreeOnTable1) {
  auto ug = games::table1_game();
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals,
                       IntervalMode::kPaperCorners);
  for (double x1 : {0.1, 0.34, 0.46, 0.9}) {
    std::vector<double> x{x1, 1.0 - x1};
    const double a = worst_case_utility(ug.game, b, x,
                                        WorstCaseMethod::kClosedForm);
    const double lp = worst_case_utility(ug.game, b, x,
                                         WorstCaseMethod::kInnerLp);
    const double root = worst_case_utility(ug.game, b, x,
                                           WorstCaseMethod::kDualRoot);
    EXPECT_NEAR(a, lp, 1e-7);
    EXPECT_NEAR(a, root, 1e-7);
  }
}

struct EvaluatorCase {
  std::uint64_t seed;
};

class WorstCaseRandomTest : public ::testing::TestWithParam<EvaluatorCase> {};

TEST_P(WorstCaseRandomTest, EvaluatorsAgreeOnRandomGames) {
  Rng rng(GetParam().seed);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t t = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    const double r =
        static_cast<double>(rng.uniform_int(1, static_cast<int>(t) - 1));
    const double width = rng.uniform(0.0, 2.0);
    auto ug = games::random_uncertain_game(rng, t, r, width);
    SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals);
    std::vector<double> raw(t);
    for (auto& v : raw) v = rng.uniform(0.0, 1.0);
    auto x = games::project_to_simplex_box(raw, r);

    const double a = worst_case_utility(ug.game, b, x,
                                        WorstCaseMethod::kClosedForm);
    const double lp = worst_case_utility(ug.game, b, x,
                                         WorstCaseMethod::kInnerLp);
    const double root = worst_case_utility(ug.game, b, x,
                                           WorstCaseMethod::kDualRoot);
    EXPECT_NEAR(a, lp, 1e-6 * (1.0 + std::abs(a))) << "trial " << trial;
    EXPECT_NEAR(a, root, 1e-6 * (1.0 + std::abs(a))) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, WorstCaseRandomTest,
    ::testing::Values(EvaluatorCase{101}, EvaluatorCase{102},
                      EvaluatorCase{103}, EvaluatorCase{104},
                      EvaluatorCase{105}, EvaluatorCase{106}),
    [](const ::testing::TestParamInfo<EvaluatorCase>& pinfo) {
      return "seed" + std::to_string(pinfo.param.seed);
    });

TEST(WorstCase, WorstLeqMidpointLeqBest) {
  WcFixture s(2, 8, 3.0, 1.5);
  std::vector<double> x = games::uniform_strategy(8, 3.0);
  const double worst = worst_case_utility(s.ug.game, *s.bounds, x);
  const double best = best_case_utility(s.ug.game, *s.bounds, x);
  // Midpoint-model expected utility must lie between the extremes.
  behavior::SuqrModel mid = s.bounds->midpoint_model();
  const double mid_eu = behavior::defender_expected_utility(s.ug.game, mid, x);
  EXPECT_LE(worst, mid_eu + 1e-9);
  EXPECT_LE(mid_eu, best + 1e-9);
  EXPECT_LT(worst, best);  // nondegenerate intervals separate them
}

TEST(WorstCase, ZeroWidthRecoversPointModel) {
  // With degenerate intervals the worst case equals the point-model
  // expected utility exactly.
  WcFixture s(3, 5, 2.0, 0.0);
  auto model = std::make_shared<behavior::SuqrModel>(
      behavior::SuqrWeights{-4.0, 0.75, 0.65}, s.ug.game);
  behavior::PointBounds pb(model);
  std::vector<double> x = games::uniform_strategy(5, 2.0);
  const double w = worst_case_utility(s.ug.game, pb, x);
  const double eu = behavior::defender_expected_utility(s.ug.game, *model, x);
  EXPECT_NEAR(w, eu, 1e-9);
  EXPECT_NEAR(best_case_utility(s.ug.game, pb, x), eu, 1e-9);
}

TEST(WorstCase, MonotoneInIntervalWidth) {
  // Wider uncertainty can only hurt the worst case.
  WcFixture s(4, 6, 2.0, 1.5);
  std::vector<double> x = games::uniform_strategy(6, 2.0);
  double prev = std::numeric_limits<double>::infinity();
  for (double factor : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    behavior::ScaledBounds sb(s.bounds, factor);
    const double w = worst_case_utility(s.ug.game, sb, x);
    EXPECT_LE(w, prev + 1e-9);
    prev = w;
  }
}

TEST(WorstCase, WitnessIsConsistent) {
  // The returned attack distribution and attractiveness must reproduce the
  // reported value and respect the interval bounds.
  WcFixture s(5, 7, 3.0, 1.0);
  std::vector<double> x = games::uniform_strategy(7, 3.0);
  WorstCaseResult r = worst_case(s.ug.game, *s.bounds, x);
  PointData p = evaluate_point(s.ug.game, *s.bounds, x);
  double q_sum = 0.0;
  double value = 0.0;
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_GE(r.worst_f[i], p.L[i] * (1 - 1e-12));
    EXPECT_LE(r.worst_f[i], p.U[i] * (1 + 1e-12));
    q_sum += r.attack_q[i];
    value += r.attack_q[i] * p.u[i];
  }
  EXPECT_NEAR(q_sum, 1.0, 1e-9);
  EXPECT_NEAR(value, r.value, 1e-9);
}

TEST(WorstCase, DualRootEqualsInnerLpOptimum) {
  // LP duality (Eqs. 6-14): the root of G equals the inner LP minimum.
  WcFixture s(6, 4, 1.0, 2.0);
  std::vector<double> x = games::uniform_strategy(4, 1.0);
  const double lp = worst_case_utility(s.ug.game, *s.bounds, x,
                                       WorstCaseMethod::kInnerLp);
  PointData p = evaluate_point(s.ug.game, *s.bounds, x);
  EXPECT_NEAR(g_at(p, lp), 0.0, 1e-6 * (1.0 + std::abs(lp)));
}

TEST(WorstCase, SingleTargetIsDeterministic) {
  // With one target the attack distribution is forced: W = Ud(x).
  games::UncertainGame ug{
      games::SecurityGame({{3.0, -5.0, 5.0, -3.0}}, 0.5),
      {{Interval(2.0, 4.0), Interval(-6.0, -4.0)}}};
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals);
  std::vector<double> x{0.5};
  EXPECT_NEAR(worst_case_utility(ug.game, b, x),
              ug.game.defender_utility(0, 0.5), 1e-9);
}

TEST(ExecutionNoise, ZeroDeltaIsExact) {
  WcFixture s(8, 5, 2.0, 1.0);
  std::vector<double> x = games::uniform_strategy(5, 2.0);
  Rng rng(1);
  auto rep = worst_case_under_execution_noise(s.ug.game, *s.bounds, x, 0.0,
                                              10, rng);
  EXPECT_DOUBLE_EQ(rep.mean, rep.nominal);
  EXPECT_DOUBLE_EQ(rep.min, rep.nominal);
}

TEST(ExecutionNoise, MinBelowMeanAndDegradesWithDelta) {
  WcFixture s(9, 6, 2.0, 1.0);
  std::vector<double> x = games::uniform_strategy(6, 2.0);
  Rng rng(2);
  auto small = worst_case_under_execution_noise(s.ug.game, *s.bounds, x,
                                                0.02, 200, rng);
  Rng rng2(2);
  auto large = worst_case_under_execution_noise(s.ug.game, *s.bounds, x,
                                                0.2, 200, rng2);
  EXPECT_LE(small.min, small.mean + 1e-12);
  EXPECT_LE(large.min, large.mean + 1e-12);
  // Bigger execution error hurts the worst draw (same noise stream).
  EXPECT_LT(large.min, small.min);
}

TEST(ExecutionNoise, Validation) {
  WcFixture s(10, 3, 1.0, 1.0);
  std::vector<double> x = games::uniform_strategy(3, 1.0);
  Rng rng(3);
  EXPECT_THROW(worst_case_under_execution_noise(s.ug.game, *s.bounds, x,
                                                -0.1, 10, rng),
               InvalidModelError);
  EXPECT_THROW(worst_case_under_execution_noise(s.ug.game, *s.bounds, x,
                                                0.1, 0, rng),
               InvalidModelError);
}

TEST(WorstCase, RejectsMalformedInput) {
  WcFixture s(7, 3, 1.0, 1.0);
  std::vector<double> wrong_size{0.5, 0.5};
  EXPECT_THROW(worst_case_utility(s.ug.game, *s.bounds, wrong_size),
               InvalidModelError);
}

}  // namespace
}  // namespace cubisg::core

// Tests for the SSG model, generators, strategy-space operations and the
// coverage-polytope abstraction.
#include <cmath>
#include <numeric>
#include <optional>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "games/coverage_space.hpp"
#include "games/generators.hpp"
#include "games/security_game.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::games {
namespace {

SecurityGame two_target_game() {
  return SecurityGame({{3.0, -5.0, 5.0, -3.0}, {7.0, -7.0, 7.0, -7.0}}, 1.0);
}

TEST(SecurityGame, UtilitiesMatchEquations) {
  SecurityGame g = two_target_game();
  // Eq. 1: Ud = x Rd + (1-x) Pd;  Eq. 2: Ua = x Pa + (1-x) Ra.
  EXPECT_DOUBLE_EQ(g.defender_utility(0, 0.0), -3.0);
  EXPECT_DOUBLE_EQ(g.defender_utility(0, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(g.defender_utility(0, 0.25), 0.25 * 5.0 + 0.75 * -3.0);
  EXPECT_DOUBLE_EQ(g.attacker_utility(0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(g.attacker_utility(0, 1.0), -5.0);
  EXPECT_DOUBLE_EQ(g.attacker_utility(1, 0.5), 0.5 * -7.0 + 0.5 * 7.0);
}

TEST(SecurityGame, VectorUtilitiesAndExtremes) {
  SecurityGame g = two_target_game();
  auto u = g.defender_utilities(std::vector<double>{0.5, 0.5});
  ASSERT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u[0], 1.0);
  EXPECT_DOUBLE_EQ(u[1], 0.0);
  EXPECT_DOUBLE_EQ(g.min_defender_penalty(), -7.0);
  EXPECT_DOUBLE_EQ(g.max_defender_reward(), 7.0);
}

TEST(SecurityGame, ValidatesInput) {
  EXPECT_THROW(SecurityGame({}, 1.0), InvalidModelError);
  // Attacker reward must exceed penalty.
  EXPECT_THROW(SecurityGame({{-1.0, 1.0, 2.0, -2.0}}, 0.5),
               InvalidModelError);
  // Defender reward must exceed penalty.
  EXPECT_THROW(SecurityGame({{3.0, -3.0, -4.0, 4.0}}, 0.5),
               InvalidModelError);
  // Resources within [0, T].
  EXPECT_THROW(SecurityGame({{3.0, -3.0, 3.0, -3.0}}, 2.0),
               InvalidModelError);
  EXPECT_THROW(SecurityGame({{3.0, -3.0, 3.0, -3.0}}, -1.0),
               InvalidModelError);
  // NaN payoffs rejected.
  EXPECT_THROW(SecurityGame({{std::nan(""), -3.0, 3.0, -3.0}}, 0.5),
               InvalidModelError);
}

TEST(SecurityGame, FeasibilityCheck) {
  SecurityGame g = two_target_game();
  EXPECT_TRUE(g.is_feasible_strategy(std::vector<double>{0.4, 0.6}));
  EXPECT_FALSE(g.is_feasible_strategy(std::vector<double>{0.4, 0.4}));
  EXPECT_FALSE(g.is_feasible_strategy(std::vector<double>{1.4, -0.4}));
  EXPECT_FALSE(g.is_feasible_strategy(std::vector<double>{1.0}));
}

TEST(Generators, RandomGameRespectsRangesAndSeed) {
  Rng rng1(5), rng2(5);
  auto g1 = random_game(rng1, 10, 3.0);
  auto g2 = random_game(rng2, 10, 3.0);
  EXPECT_EQ(g1.num_targets(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(g1.target(i).attacker_reward,
                     g2.target(i).attacker_reward);
    EXPECT_GE(g1.target(i).attacker_reward, 1.0);
    EXPECT_LE(g1.target(i).attacker_reward, 10.0);
    EXPECT_LE(g1.target(i).attacker_penalty, -1.0);
    // zero-sum default
    EXPECT_DOUBLE_EQ(g1.target(i).defender_reward,
                     -g1.target(i).attacker_penalty);
  }
}

TEST(Generators, NonZeroSumDrawsDefenderIndependently) {
  Rng rng(6);
  GeneratorOptions opt;
  opt.zero_sum = false;
  auto g = random_game(rng, 50, 5.0, opt);
  int mirrored = 0;
  for (std::size_t i = 0; i < g.num_targets(); ++i) {
    if (g.target(i).defender_reward == -g.target(i).attacker_penalty) {
      ++mirrored;
    }
  }
  EXPECT_LT(mirrored, 5);
}

TEST(Generators, UncertainGameIntervalsCoverMidpoints) {
  Rng rng(7);
  auto ug = random_uncertain_game(rng, 8, 2.0, 1.0);
  ASSERT_EQ(ug.attacker_intervals.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& iv = ug.attacker_intervals[i];
    EXPECT_TRUE(iv.attacker_reward.contains(ug.game.target(i).attacker_reward));
    EXPECT_TRUE(
        iv.attacker_penalty.contains(ug.game.target(i).attacker_penalty));
    EXPECT_GT(iv.attacker_reward.lo(), 0.0);
    EXPECT_LT(iv.attacker_penalty.hi(), 0.0);
  }
}

TEST(Generators, ZeroWidthCollapsesIntervals) {
  Rng rng(8);
  auto ug = random_uncertain_game(rng, 5, 2.0, 0.0);
  for (const auto& iv : ug.attacker_intervals) {
    EXPECT_TRUE(iv.attacker_reward.is_point());
    EXPECT_TRUE(iv.attacker_penalty.is_point());
  }
}

TEST(Generators, Table1MatchesPaper) {
  auto ug = table1_game();
  EXPECT_EQ(ug.game.num_targets(), 2u);
  EXPECT_DOUBLE_EQ(ug.game.resources(), 1.0);
  EXPECT_EQ(ug.attacker_intervals[0].attacker_reward, Interval(1.0, 5.0));
  EXPECT_EQ(ug.attacker_intervals[0].attacker_penalty, Interval(-7.0, -3.0));
  EXPECT_EQ(ug.attacker_intervals[1].attacker_reward, Interval(5.0, 9.0));
  EXPECT_EQ(ug.attacker_intervals[1].attacker_penalty, Interval(-9.0, -5.0));
  // Zero-sum mirror of interval midpoints.
  EXPECT_DOUBLE_EQ(ug.game.target(0).attacker_reward, 3.0);
  EXPECT_DOUBLE_EQ(ug.game.target(0).defender_reward, 5.0);
  EXPECT_DOUBLE_EQ(ug.game.target(0).defender_penalty, -3.0);
}

TEST(Generators, WildlifeGridShapesPayoffsByDensity) {
  Rng rng(9);
  auto ug = wildlife_grid_game(rng, 4, 5, 3.0, 0.5);
  EXPECT_EQ(ug.game.num_targets(), 20u);
  double min_r = 1e9, max_r = -1e9;
  for (std::size_t i = 0; i < 20; ++i) {
    min_r = std::min(min_r, ug.game.target(i).attacker_reward);
    max_r = std::max(max_r, ug.game.target(i).attacker_reward);
  }
  // Hotspots must create real contrast between cells.
  EXPECT_GT(max_r - min_r, 1.0);
}

TEST(PessimisticDefender, LowersPayoffsExactly) {
  SecurityGame g = two_target_game();
  std::vector<DefenderPayoffIntervals> iv = {
      {Interval(4.0, 6.0), Interval(-4.0, -2.0)},
      {Interval(6.0, 8.0), Interval(-8.0, -6.0)},
  };
  SecurityGame p = pessimistic_defender_game(g, iv);
  EXPECT_DOUBLE_EQ(p.target(0).defender_reward, 4.0);
  EXPECT_DOUBLE_EQ(p.target(0).defender_penalty, -4.0);
  EXPECT_DOUBLE_EQ(p.target(1).defender_reward, 6.0);
  // Attacker payoffs untouched.
  EXPECT_DOUBLE_EQ(p.target(0).attacker_reward, 3.0);
  // Pointwise lower envelope: Ud is lower for every coverage level.
  for (double x = 0.0; x <= 1.0; x += 0.25) {
    EXPECT_LE(p.defender_utility(0, x), g.defender_utility(0, x) + 1e-12);
  }
}

TEST(PessimisticDefender, PointIntervalsAreIdentity) {
  SecurityGame g = two_target_game();
  std::vector<DefenderPayoffIntervals> iv = {
      {Interval(g.target(0).defender_reward),
       Interval(g.target(0).defender_penalty)},
      {Interval(g.target(1).defender_reward),
       Interval(g.target(1).defender_penalty)},
  };
  SecurityGame p = pessimistic_defender_game(g, iv);
  EXPECT_DOUBLE_EQ(p.target(1).defender_penalty,
                   g.target(1).defender_penalty);
}

TEST(PessimisticDefender, Validation) {
  SecurityGame g = two_target_game();
  // Wrong count.
  EXPECT_THROW(pessimistic_defender_game(
                   g, std::vector<DefenderPayoffIntervals>{}),
               InvalidModelError);
  // Nominal payoff outside its interval.
  std::vector<DefenderPayoffIntervals> off = {
      {Interval(8.0, 9.0), Interval(-4.0, -2.0)},
      {Interval(6.0, 8.0), Interval(-8.0, -6.0)},
  };
  EXPECT_THROW(pessimistic_defender_game(g, off), InvalidModelError);
  // Interval lows violate reward > penalty.
  std::vector<DefenderPayoffIntervals> crossed = {
      {Interval(-5.0, 6.0), Interval(-4.0, -2.0)},
      {Interval(6.0, 8.0), Interval(-8.0, -6.0)},
  };
  EXPECT_THROW(pessimistic_defender_game(g, crossed), InvalidModelError);
}

TEST(StrategySpace, UniformStrategy) {
  auto x = uniform_strategy(4, 3.0);
  ASSERT_EQ(x.size(), 4u);
  for (double xi : x) EXPECT_DOUBLE_EQ(xi, 0.75);
  EXPECT_THROW(uniform_strategy(0, 1.0), std::invalid_argument);
}

TEST(StrategySpace, ProjectionIsFeasible) {
  Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    const double r = rng.uniform(0.0, static_cast<double>(n));
    std::vector<double> v(n);
    for (auto& vi : v) vi = rng.uniform(-2.0, 3.0);
    auto x = project_to_simplex_box(v, r);
    double sum = 0.0;
    for (double xi : x) {
      EXPECT_GE(xi, -1e-12);
      EXPECT_LE(xi, 1.0 + 1e-12);
      sum += xi;
    }
    EXPECT_NEAR(sum, r, 1e-9);
  }
}

TEST(StrategySpace, ProjectionIsIdempotent) {
  std::vector<double> v{0.2, 0.5, 0.3};
  auto x = project_to_simplex_box(v, 1.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], v[i], 1e-9);
}

TEST(StrategySpace, ProjectionMinimizesDistance) {
  // Reference check against a fine grid search on a 2d instance.
  std::vector<double> v{1.4, -0.2};
  auto x = project_to_simplex_box(v, 1.0);
  double best = 1e18;
  std::vector<double> best_x(2);
  for (int i = 0; i <= 1000; ++i) {
    const double a = i / 1000.0;
    const double b = 1.0 - a;
    if (b < 0.0 || b > 1.0) continue;
    const double d = (a - v[0]) * (a - v[0]) + (b - v[1]) * (b - v[1]);
    if (d < best) {
      best = d;
      best_x = {a, b};
    }
  }
  EXPECT_NEAR(x[0], best_x[0], 1e-3);
  EXPECT_NEAR(x[1], best_x[1], 1e-3);
}

TEST(StrategySpace, GreedyCoversWorstTargetsFirst) {
  std::vector<double> penalties{-1.0, -9.0, -5.0};
  auto x = greedy_by_penalty(penalties, 1.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);   // worst penalty gets full coverage
  EXPECT_DOUBLE_EQ(x[2], 0.5);   // next worst gets the remainder
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

// ---- project_to_simplex_box edge cases (historically untested). ----

TEST(StrategySpace, ProjectionWithZeroResourcesIsAllZeros) {
  std::vector<double> v{0.9, -0.3, 2.0, 0.5};
  auto x = project_to_simplex_box(v, 0.0);
  ASSERT_EQ(x.size(), 4u);
  for (double xi : x) EXPECT_DOUBLE_EQ(xi, 0.0);
}

TEST(StrategySpace, ProjectionSaturatesWhenResourcesEqualTargets) {
  // R = T: the box clamp saturates every coordinate at 1 and the budget
  // row is tight at the corner.
  std::vector<double> v{-1.0, 0.2, 5.0};
  auto x = project_to_simplex_box(v, 3.0);
  for (double xi : x) EXPECT_DOUBLE_EQ(xi, 1.0);
  // R > T has no feasible point: the wrapper rejects it up front.
  EXPECT_THROW(project_to_simplex_box(v, 3.0 + 1e-6),
               std::invalid_argument);
}

TEST(StrategySpace, ProjectionOfEqualInputsIsEqualAndDeterministic) {
  // All-equal input: every coordinate gets R/T and repeated calls are
  // bitwise identical.  (Exact within-vector ties are NOT guaranteed:
  // the pinned legacy arithmetic dumps the residual of the tau
  // bisection onto a prefix of the coordinates, so the low-order ~1e-14
  // can differ between coordinates -- but never between calls.)
  std::vector<double> v(8, 0.37);
  const auto a = project_to_simplex_box(v, 2.0);
  const auto b = project_to_simplex_box(v, 2.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "projection must be deterministic";
    EXPECT_NEAR(a[i], 0.25, 1e-12);
    EXPECT_NEAR(a[i], a[0], 1e-12) << "equal inputs stay tied";
  }
}

TEST(StrategySpace, GreedyTieOrderingIsPinnedToTargetIndex) {
  // Equal penalties: coverage is assigned in ascending target index, a
  // pinned ordering warm starts and goldens rely on.
  std::vector<double> penalties{-4.0, -4.0, -4.0};
  auto x = greedy_by_penalty(penalties, 1.5);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 0.0);
}

// ---- CoverageSpace: the polytope abstraction. ----

TEST(CoverageSpace, SimplexMatchesLegacyHelpersBitwise) {
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 9));
    const double r = rng.uniform(0.0, static_cast<double>(n));
    const CoverageSpace space = CoverageSpace::simplex(n, r);
    ASSERT_TRUE(space.is_simplex());
    const auto u1 = space.uniform_seed();
    const auto u2 = uniform_strategy(n, r);
    std::vector<double> v(n), pen(n);
    for (auto& vi : v) vi = rng.uniform(-2.0, 3.0);
    for (auto& p : pen) p = rng.uniform(-9.0, -1.0);
    const auto p1 = space.project(v);
    const auto p2 = project_to_simplex_box(v, r);
    const auto g1 = space.greedy_seed(pen);
    const auto g2 = greedy_by_penalty(pen, r);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(u1[i], u2[i]);
      EXPECT_EQ(p1[i], p2[i]);
      EXPECT_EQ(g1[i], g2[i]);
    }
  }
}

TEST(CoverageSpace, DescriptorRoundTripsEveryFamily) {
  const std::vector<CoverageSpace> spaces = {
      CoverageSpace::grouped({0, 0, 1, 1}, {1.0, 1.5}),
      CoverageSpace::multi_defender({2, 3}, {1.0, 2.0}),
      CoverageSpace::patrol_graph({0, 0, 1, 1}, {1.0, 1.5},
                                  {1.0, 0.0, 1.0, 1.0}),
  };
  for (const CoverageSpace& s : spaces) {
    const std::string d = s.descriptor();
    EXPECT_EQ(d.find(' '), std::string::npos)
        << "descriptor must be a single token: " << d;
    const std::optional<CoverageSpace> back =
        CoverageSpace::from_descriptor(d);
    ASSERT_TRUE(back.has_value()) << d;
    EXPECT_TRUE(*back == s) << d;
    EXPECT_EQ(back->descriptor(), d);
  }
  // The simplex is shape-less on the wire: it renders as "simplex" and
  // parses back to the default sentinel (consumers derive T and R from
  // the game itself).  Empty behaves the same for legacy certificates.
  EXPECT_EQ(CoverageSpace::simplex(4, 1.5).descriptor(), "simplex");
  const auto sentinel = CoverageSpace::from_descriptor("simplex");
  ASSERT_TRUE(sentinel.has_value());
  EXPECT_TRUE(sentinel->is_default());
  const auto empty = CoverageSpace::from_descriptor("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->is_default());
  EXPECT_FALSE(CoverageSpace::from_descriptor("grouped;nonsense").has_value());
  EXPECT_FALSE(CoverageSpace::from_descriptor("bogus;g=0;b=1").has_value());
}

TEST(CoverageSpace, DescriptorDistinguishesBudgetsAndCaps) {
  // The cache-aliasing regression at the games layer: same groups,
  // different per-slot budgets (or caps) must never share a descriptor.
  const auto a = CoverageSpace::grouped({0, 0, 1, 1}, {1.0, 1.0});
  const auto b = CoverageSpace::grouped({0, 0, 1, 1}, {1.5, 0.5});
  EXPECT_NE(a.descriptor(), b.descriptor());
  const auto c = CoverageSpace::patrol_graph({0, 0, 1, 1}, {1.0, 1.0},
                                             {1.0, 1.0, 1.0, 1.0});
  const auto d = CoverageSpace::patrol_graph({0, 0, 1, 1}, {1.0, 1.0},
                                             {1.0, 1.0, 1.0, 0.5});
  EXPECT_NE(c.descriptor(), d.descriptor());
  EXPECT_NE(a.descriptor(), c.descriptor());
}

TEST(CoverageSpace, ValidatesInput) {
  EXPECT_THROW(CoverageSpace::simplex(0, 1.0), std::invalid_argument);
  EXPECT_THROW(CoverageSpace::simplex(2, 3.0), std::invalid_argument);
  EXPECT_THROW(CoverageSpace::grouped({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(CoverageSpace::grouped({0, 2}, {1.0, 1.0}),
               std::invalid_argument);  // group id out of range
  EXPECT_THROW(CoverageSpace::grouped({0, 1}, {1.0, -0.5}),
               std::invalid_argument);  // negative budget
  EXPECT_THROW(CoverageSpace::grouped({0, 0, 1}, {1.0, 1.5}),
               std::invalid_argument);  // budget exceeds group capacity
  EXPECT_THROW(
      CoverageSpace::patrol_graph({0, 1}, {1.0, 1.0}, {1.0, 1.5}),
      std::invalid_argument);  // cap out of [0, 1]
  EXPECT_THROW(
      CoverageSpace::patrol_graph({0, 1}, {1.0, 1.0}, {1.0, 0.5}),
      std::invalid_argument);  // budget exceeds reachable capacity
}

TEST(CoverageSpace, GroupedProjectionHitsBudgetsAndCaps) {
  const auto space = CoverageSpace::patrol_graph(
      {0, 0, 0, 1, 1, 1}, {1.5, 1.0}, {1.0, 0.5, 1.0, 1.0, 0.0, 1.0});
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(6);
    for (auto& vi : v) vi = rng.uniform(-1.0, 2.0);
    const auto x = space.project(v);
    double g0 = x[0] + x[1] + x[2];
    double g1 = x[3] + x[4] + x[5];
    EXPECT_NEAR(g0, 1.5, 1e-9);
    EXPECT_NEAR(g1, 1.0, 1e-9);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_GE(x[i], -1e-12);
      EXPECT_LE(x[i], space.cap(i) + 1e-12);
    }
    EXPECT_DOUBLE_EQ(x[4], 0.0);  // cap 0 forces the coordinate to 0
    EXPECT_TRUE(space.is_feasible(x, 1e-9));
  }
}

TEST(CoverageSpace, ResidualsMeasureViolations) {
  const auto space = CoverageSpace::grouped({0, 0, 1, 1}, {1.0, 1.0});
  double budget_over = 0.0;
  double box_over = 0.0;
  space.residuals(std::vector<double>{0.8, 0.5, 0.2, 0.3}, budget_over,
                  box_over);
  EXPECT_NEAR(budget_over, 0.3, 1e-12);  // group 0 over by 0.3
  EXPECT_DOUBLE_EQ(box_over, 0.0);
  space.residuals(std::vector<double>{1.2, -0.1, 0.2, 0.3}, budget_over,
                  box_over);
  EXPECT_NEAR(box_over, 0.2, 1e-12);
}

TEST(Generators, MultiDefenderFamilyIsConsistent) {
  Rng rng(31);
  const FamilyGame fg = multi_defender_uncertain_game(rng, 3, 4, 1.2, 1.0);
  EXPECT_EQ(fg.game.game.num_targets(), 12u);
  EXPECT_EQ(fg.coverage.num_targets(), 12u);
  EXPECT_EQ(fg.coverage.num_groups(), 3u);
  EXPECT_EQ(fg.coverage.family(), CoverageFamily::kMultiDefender);
  EXPECT_NEAR(fg.coverage.total_budget(), fg.game.game.resources(), 1e-12);
  // Contiguous defender blocks.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(fg.coverage.group_of(i), i / 4);
  }
}

TEST(Generators, PatrolGraphFamilyEncodesReachability) {
  Rng rng(32);
  const std::size_t locations = 5;
  const std::size_t slots = 3;
  const FamilyGame fg =
      patrol_graph_uncertain_game(rng, locations, slots, 2.0, 1.0);
  EXPECT_EQ(fg.game.game.num_targets(), locations * slots);
  EXPECT_EQ(fg.coverage.family(), CoverageFamily::kPatrolGraph);
  EXPECT_TRUE(fg.coverage.has_caps());
  EXPECT_NEAR(fg.coverage.total_budget(), fg.game.game.resources(), 1e-12);
  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t reachable = std::min(locations, s + 1);
    EXPECT_LE(fg.coverage.budget(s),
              static_cast<double>(reachable) + 1e-12);
    for (std::size_t l = 0; l < locations; ++l) {
      const std::size_t i = s * locations + l;
      EXPECT_EQ(fg.coverage.group_of(i), s);
      EXPECT_DOUBLE_EQ(fg.coverage.cap(i), l <= s ? 1.0 : 0.0);
    }
  }
}

}  // namespace
}  // namespace cubisg::games

// Heavier randomized property sweeps across module boundaries.  These
// encode the structural invariants the algorithm design relies on, beyond
// what the per-module suites check.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/hfunction.hpp"
#include "core/maximin.hpp"
#include "core/sse.hpp"
#include "core/worst_case.hpp"
#include "games/comb_sampling.hpp"
#include "games/generators.hpp"
#include "games/strategy_space.hpp"

namespace cubisg {
namespace {

using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

struct Instance {
  games::UncertainGame ug;
  SuqrIntervalBounds bounds;
  static Instance make(std::uint64_t seed, std::size_t t, double r,
                       double width) {
    Rng rng(seed);
    auto ug = games::random_uncertain_game(rng, t, r, width);
    SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals);
    return {std::move(ug), std::move(b)};
  }
};

struct Seed {
  std::uint64_t value;
};

class PropertyTest : public ::testing::TestWithParam<Seed> {};

TEST_P(PropertyTest, CubisValueMonotoneInResources) {
  // More resources can never hurt the optimal worst case.
  Rng rng(GetParam().value);
  const std::size_t t = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  const double width = rng.uniform(0.5, 2.0);
  double prev = -std::numeric_limits<double>::infinity();
  for (double r = 1.0; r <= static_cast<double>(t); r += 1.0) {
    Rng game_rng(GetParam().value ^ 0x1234);  // same game each r
    auto ug = games::random_uncertain_game(game_rng, t, r, width);
    SuqrIntervalBounds bounds(SuqrWeightIntervals{}, ug.attacker_intervals);
    core::CubisOptions opt;
    opt.segments = 10;
    opt.polish_iterations = 20;
    auto sol = core::CubisSolver(opt).solve({ug.game, bounds});
    ASSERT_TRUE(sol.ok());
    // Allow grid slack: the coarse grid can mis-rank nearby budgets.
    EXPECT_GE(sol.worst_case_utility, prev - 0.35) << "r=" << r;
    prev = std::max(prev, sol.worst_case_utility);
  }
}

TEST_P(PropertyTest, WorstCaseBetweenFloorAndMidpointEverywhere) {
  // For ANY strategy: min_i Ud_i(x_i) <= W(x) <= midpoint-model EU.
  Rng rng(GetParam().value ^ 0xAA);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t t = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
    const double r = 1.0 + std::floor(rng.uniform(0.0, t - 1.0));
    Instance in = Instance::make(rng(), t, r, rng.uniform(0.0, 2.0));
    std::vector<double> raw(t);
    for (auto& v : raw) v = rng.uniform(0.0, 1.0);
    auto x = games::project_to_simplex_box(raw, r);

    const double w = core::worst_case_utility(in.ug.game, in.bounds, x);
    double floor_u = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t; ++i) {
      floor_u = std::min(floor_u, in.ug.game.defender_utility(i, x[i]));
    }
    behavior::SuqrModel mid = in.bounds.midpoint_model();
    const double mid_eu =
        behavior::defender_expected_utility(in.ug.game, mid, x);
    EXPECT_GE(w, floor_u - 1e-9) << "trial " << trial;
    EXPECT_LE(w, mid_eu + 1e-9) << "trial " << trial;
  }
}

TEST_P(PropertyTest, SampledTypesNeverUndercutCertifiedWorstCase) {
  // Every SUQR type inside the box yields utility >= W(x): the interval
  // worst case is a true certificate.
  Rng rng(GetParam().value ^ 0xBB);
  Instance in = Instance::make(rng(), 6, 2.0, 1.5);
  Rng pop_rng(rng());
  behavior::SampledSuqrPopulation pop(SuqrWeightIntervals{},
                                      in.ug.attacker_intervals, 64, pop_rng);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> raw(6);
    for (auto& v : raw) v = rng.uniform(0.0, 1.0);
    auto x = games::project_to_simplex_box(raw, 2.0);
    const double w = core::worst_case_utility(in.ug.game, in.bounds, x);
    EXPECT_GE(pop.min_defender_utility(in.ug.game, x), w - 1e-7);
  }
}

TEST_P(PropertyTest, DualityRootConsistentWithPropositionOne) {
  // Proposition 1's monotone structure: the step feasibility threshold of
  // a FIXED x equals W(x); G(x, beta(c), c) >= 0 iff c <= W(x).
  Rng rng(GetParam().value ^ 0xCC);
  Instance in = Instance::make(rng(), 5, 2.0, 1.0);
  std::vector<double> raw(5);
  for (auto& v : raw) v = rng.uniform(0.0, 1.0);
  auto x = games::project_to_simplex_box(raw, 2.0);
  const double w = core::worst_case_utility(in.ug.game, in.bounds, x);
  const core::PointData p = core::evaluate_point(in.ug.game, in.bounds, x);
  for (double delta : {-0.5, -0.1, -0.01}) {
    EXPECT_GE(core::g_at(p, w + delta), 0.0) << delta;
  }
  for (double delta : {0.01, 0.1, 0.5}) {
    EXPECT_LE(core::g_at(p, w + delta), 0.0) << delta;
  }
}

TEST_P(PropertyTest, MilpStepDominatesDpStepAndBothBracketTruth) {
  // For random (game, c): DP step value <= MILP step value, and both are
  // within O(1/K) of each other.
  Rng rng(GetParam().value ^ 0xDD);
  Instance in = Instance::make(rng(), 3, 1.0, 1.0);
  core::SolveContext ctx{in.ug.game, in.bounds};
  const double c = rng.uniform(in.ug.game.min_defender_penalty(),
                               in.ug.game.max_defender_reward());
  core::CubisOptions dp_opt;
  dp_opt.segments = 6;
  core::CubisOptions milp_opt = dp_opt;
  milp_opt.backend = core::StepBackend::kMilp;
  milp_opt.milp.max_nodes = 50000;

  auto dp = core::cubis_step(ctx, c, dp_opt);
  auto milp = core::cubis_step(ctx, c, milp_opt);
  ASSERT_EQ(dp.status, SolverStatus::kOptimal);
  ASSERT_EQ(milp.status, SolverStatus::kOptimal);
  if (dp.objective >= -1e-9) {
    // DP found a feasible point; the MILP must agree (it dominates).
    EXPECT_FALSE(milp.x.empty());
  }
}

TEST_P(PropertyTest, CombSamplingPreservesExpectedUtilityLinearly) {
  // The defender's utility against ANY fixed attack distribution is linear
  // in coverage, so executing the comb mixture achieves exactly the
  // marginal strategy's expected utility.
  Rng rng(GetParam().value ^ 0xEE);
  const std::size_t t = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  Instance in = Instance::make(rng(), t, 2.0, 1.0);
  std::vector<double> raw(t);
  for (auto& v : raw) v = rng.uniform(0.0, 1.0);
  auto x = games::project_to_simplex_box(raw, 2.0);

  // A fixed attack distribution (the worst case at x, say).
  auto wc = core::worst_case(in.ug.game, in.bounds, x);
  double marginal_eu = 0.0;
  for (std::size_t i = 0; i < t; ++i) {
    marginal_eu += wc.attack_q[i] * in.ug.game.defender_utility(i, x[i]);
  }
  // The mixture's expected utility against the same attack distribution.
  auto mix = games::comb_decomposition(x);
  double mixture_eu = 0.0;
  for (const auto& alloc : mix) {
    std::vector<double> pure(t, 0.0);
    for (std::size_t i : alloc.covered) pure[i] = 1.0;
    for (std::size_t i = 0; i < t; ++i) {
      mixture_eu += alloc.probability * wc.attack_q[i] *
                    in.ug.game.defender_utility(i, pure[i]);
    }
  }
  EXPECT_NEAR(mixture_eu, marginal_eu, 1e-9);
}

TEST_P(PropertyTest, SseDefenderUtilityUpperBoundsRobustValue) {
  // Against a RATIONAL attacker with favorable tie-breaking, the SSE value
  // is the best the defender can do; the behavioral worst case of any
  // strategy cannot certify more than ... (no general order). Instead check
  // internal consistency: re-solving SSE on the same game is deterministic
  // and its utility matches the induced best response.
  Rng rng(GetParam().value ^ 0xFF);
  auto game = games::covariant_game(rng, 6, 2.0, rng.uniform(0.0, 1.0));
  auto a = core::solve_sse(game);
  auto b = core::solve_sse(game);
  ASSERT_EQ(a.status, SolverStatus::kOptimal);
  EXPECT_DOUBLE_EQ(a.defender_utility, b.defender_utility);
  const std::size_t br = core::best_response_target(game, a.strategy);
  EXPECT_NEAR(game.defender_utility(br, a.strategy[br]),
              a.defender_utility, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PropertyTest,
    ::testing::Values(Seed{201}, Seed{202}, Seed{203}, Seed{204}, Seed{205}),
    [](const ::testing::TestParamInfo<Seed>& pinfo) {
      return "seed" + std::to_string(pinfo.param.value);
    });

TEST_P(PropertyTest, PessimisticDefenderGameCertifiesBothUncertainties) {
  // CUBIS on the pessimistic-payoff transform lower-bounds the utility
  // under ANY defender payoff realization in the intervals AND any
  // behavior in the attractiveness box.
  Rng rng(GetParam().value ^ 0x77);
  Instance in = Instance::make(rng(), 5, 2.0, 1.0);
  std::vector<games::DefenderPayoffIntervals> dps;
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& p = in.ug.game.target(i);
    dps.push_back({Interval(p.defender_reward - 0.5,
                            p.defender_reward + 0.5),
                   Interval(p.defender_penalty - 0.5,
                            p.defender_penalty + 0.5)});
  }
  games::SecurityGame pess =
      games::pessimistic_defender_game(in.ug.game, dps);
  core::CubisOptions opt;
  opt.segments = 15;
  auto sol = core::CubisSolver(opt).solve({pess, in.bounds});
  ASSERT_TRUE(sol.ok());

  // Sample defender payoff realizations inside the intervals; the
  // behavioral worst case under each realization must clear the
  // certificate.
  for (int s = 0; s < 5; ++s) {
    std::vector<games::TargetPayoffs> realized(5);
    for (std::size_t i = 0; i < 5; ++i) {
      realized[i] = in.ug.game.target(i);
      realized[i].defender_reward =
          rng.uniform(dps[i].reward.lo(), dps[i].reward.hi());
      realized[i].defender_penalty =
          rng.uniform(dps[i].penalty.lo(), dps[i].penalty.hi());
    }
    games::SecurityGame sampled(realized, 2.0);
    const double w =
        core::worst_case_utility(sampled, in.bounds, sol.strategy);
    EXPECT_GE(w, sol.worst_case_utility - 1e-7) << "sample " << s;
  }
}

// ---- failure injection -----------------------------------------------

TEST(FailureInjection, TinyAttractivenessBoundsStayFinite) {
  // Extremely deterring weights push L, U toward 0; the evaluators must
  // stay finite (log-space where it matters).
  auto ug = games::table1_game();
  SuqrWeightIntervals w;
  w.w1 = Interval(-40.0, -35.0);
  SuqrIntervalBounds bounds(w, ug.attacker_intervals);
  std::vector<double> x{0.5, 0.5};
  const double v = core::worst_case_utility(ug.game, bounds, x);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(FailureInjection, HugePayoffsDoNotOverflowSolvers) {
  std::vector<games::TargetPayoffs> payoffs = {
      {9.0, -8.0, 1e5, -1e5}, {5.0, -3.0, 2e5, -2e5}};
  games::UncertainGame ug{
      games::SecurityGame(payoffs, 1.0),
      {{Interval(8.0, 10.0), Interval(-9.0, -7.0)},
       {Interval(4.0, 6.0), Interval(-4.0, -2.0)}}};
  SuqrIntervalBounds bounds(SuqrWeightIntervals{}, ug.attacker_intervals);
  core::CubisOptions opt;
  opt.segments = 10;
  auto sol = core::CubisSolver(opt).solve({ug.game, bounds});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(std::isfinite(sol.worst_case_utility));
  EXPECT_LE(sol.ub - sol.lb, opt.epsilon + 1e-9);
}

TEST(FailureInjection, KEqualsOneStillSolves) {
  // A single piecewise segment: maximal approximation error, but the
  // solver must remain well-defined and within the coarse bound.
  Rng rng(303);
  auto ug = games::random_uncertain_game(rng, 4, 2.0, 1.0);
  SuqrIntervalBounds bounds(SuqrWeightIntervals{}, ug.attacker_intervals);
  core::CubisOptions opt;
  opt.segments = 1;
  auto sol = core::CubisSolver(opt).solve({ug.game, bounds});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(std::isfinite(sol.worst_case_utility));
}

TEST(FailureInjection, MismatchedBoundsRejected) {
  auto ug = games::table1_game();
  // Bounds for 3 targets against a 2-target game.
  std::vector<games::IntervalPayoffs> wrong = {
      {Interval(1.0, 5.0), Interval(-7.0, -3.0)},
      {Interval(5.0, 9.0), Interval(-9.0, -5.0)},
      {Interval(2.0, 4.0), Interval(-5.0, -4.0)}};
  SuqrIntervalBounds bounds(SuqrWeightIntervals{}, wrong);
  std::vector<double> x{0.5, 0.5};
  EXPECT_THROW(core::worst_case_utility(ug.game, bounds, x),
               InvalidModelError);
}

TEST(FailureInjection, MaximinHandlesIdenticalTargets) {
  // Fully degenerate game: all targets identical.
  std::vector<games::TargetPayoffs> payoffs(5, {4.0, -4.0, 4.0, -4.0});
  games::SecurityGame game(payoffs, 2.0);
  behavior::PointBounds bounds(std::make_shared<behavior::SuqrModel>(
      behavior::SuqrWeights{}, game));
  auto sol = core::MaximinSolver().solve({game, bounds});
  ASSERT_TRUE(sol.ok());
  for (double xi : sol.strategy) EXPECT_NEAR(xi, 0.4, 1e-7);
}

}  // namespace
}  // namespace cubisg

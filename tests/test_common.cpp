// Unit tests for the common substrate: intervals, RNG, math utilities,
// logging and timers.
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/interval.hpp"
#include "common/log.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace cubisg {
namespace {

// ---- Interval -------------------------------------------------------------

TEST(Interval, ConstructionAndAccessors) {
  Interval iv(-2.0, 3.0);
  EXPECT_DOUBLE_EQ(iv.lo(), -2.0);
  EXPECT_DOUBLE_EQ(iv.hi(), 3.0);
  EXPECT_DOUBLE_EQ(iv.width(), 5.0);
  EXPECT_DOUBLE_EQ(iv.mid(), 0.5);
  EXPECT_FALSE(iv.is_point());
  EXPECT_TRUE(Interval(1.0).is_point());
}

TEST(Interval, RejectsInvalid) {
  EXPECT_THROW(Interval(2.0, 1.0), InvalidModelError);
  EXPECT_THROW(Interval(0.0, std::numeric_limits<double>::infinity()),
               InvalidModelError);
  EXPECT_THROW(Interval(std::nan(""), 1.0), InvalidModelError);
}

TEST(Interval, Contains) {
  Interval iv(-1.0, 1.0);
  EXPECT_TRUE(iv.contains(0.0));
  EXPECT_TRUE(iv.contains(-1.0));
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_FALSE(iv.contains(1.0001));
  EXPECT_TRUE(iv.contains(Interval(-0.5, 0.5)));
  EXPECT_FALSE(iv.contains(Interval(0.5, 1.5)));
}

TEST(Interval, Arithmetic) {
  Interval a(1.0, 2.0);
  Interval b(-3.0, -1.0);
  EXPECT_EQ(a + b, Interval(-2.0, 1.0));
  EXPECT_EQ(a - b, Interval(2.0, 5.0));
  // Product over the box: {1,2} x {-3,-1} -> [-6, -1].
  EXPECT_EQ(a * b, Interval(-6.0, -1.0));
  EXPECT_EQ(2.0 * a, Interval(2.0, 4.0));
  EXPECT_EQ(-1.0 * a, Interval(-2.0, -1.0));
}

TEST(Interval, ProductCoversMixedSigns) {
  Interval a(-2.0, 3.0);
  Interval b(-1.0, 4.0);
  // Extremes: -2*4=-8, 3*4=12.
  EXPECT_EQ(a * b, Interval(-8.0, 12.0));
}

TEST(Interval, ExpMonotone) {
  Interval a(-1.0, 2.0);
  Interval e = exp(a);
  EXPECT_DOUBLE_EQ(e.lo(), std::exp(-1.0));
  EXPECT_DOUBLE_EQ(e.hi(), std::exp(2.0));
}

TEST(Interval, WidenScale) {
  Interval a(1.0, 3.0);
  EXPECT_EQ(a.widened(0.5), Interval(0.5, 3.5));
  EXPECT_EQ(a.scaled_about_mid(0.5), Interval(1.5, 2.5));
  EXPECT_EQ(a.scaled_about_mid(0.0), Interval(2.0, 2.0));
}

TEST(Interval, StreamOutput) {
  std::ostringstream os;
  os << Interval(1.0, 2.0);
  EXPECT_EQ(os.str(), "[1, 2]");
}

// ---- Rng --------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent2(23);
  parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ---- math_util --------------------------------------------------------

TEST(MathUtil, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e12, 1e12 + 1.0, 0.0, 1e-9));
}

TEST(MathUtil, LogSumExpMatchesDirect) {
  std::vector<double> v{0.1, -2.0, 3.5};
  double direct = std::log(std::exp(0.1) + std::exp(-2.0) + std::exp(3.5));
  EXPECT_NEAR(log_sum_exp(v), direct, 1e-12);
}

TEST(MathUtil, LogSumExpStableForLargeInputs) {
  std::vector<double> v{1000.0, 1000.0};
  EXPECT_NEAR(log_sum_exp(v), 1000.0 + std::log(2.0), 1e-9);
  std::vector<double> w{-1000.0, -1000.0};
  EXPECT_NEAR(log_sum_exp(w), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathUtil, LogSumExpEmpty) {
  EXPECT_EQ(log_sum_exp({}), -std::numeric_limits<double>::infinity());
}

TEST(MathUtil, Linspace) {
  auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(MathUtil, StableSumCompensates) {
  // 1 + 1e-16 repeated: naive summation loses the small terms entirely.
  std::vector<double> v;
  v.push_back(1.0);
  for (int i = 0; i < 10000; ++i) v.push_back(1e-16);
  EXPECT_NEAR(stable_sum(v), 1.0 + 1e-12, 1e-15);
}

TEST(MathUtil, StableDot) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(stable_dot(a, b), 4.0 - 10.0 + 18.0);
  std::vector<double> c{1.0};
  EXPECT_THROW(stable_dot(a, c), std::invalid_argument);
}

TEST(MathUtil, AllFinite) {
  EXPECT_TRUE(all_finite(std::vector<double>{1.0, -2.0}));
  EXPECT_FALSE(all_finite(std::vector<double>{1.0, std::nan("")}));
  EXPECT_FALSE(all_finite(
      std::vector<double>{std::numeric_limits<double>::infinity()}));
}

TEST(MathUtil, Clamp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

// ---- Timer / Log ------------------------------------------------------

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds());  // millis = 1000x seconds
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Log, LevelsFilterAndSinkReceives) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });
  set_log_level(LogLevel::kInfo);
  CUBISG_LOG(LogLevel::kDebug) << "hidden";
  CUBISG_LOG(LogLevel::kInfo) << "shown " << 42;
  CUBISG_LOG(LogLevel::kError) << "error";
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "shown 42");
  EXPECT_EQ(captured[1], "error");
}

TEST(Errors, StatusNames) {
  EXPECT_EQ(to_string(SolverStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolverStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(SolverStatus::kEarlyPositive), "early-positive");
}

}  // namespace
}  // namespace cubisg

#include "brute_force.hpp"

#include <functional>

namespace cubisg::testing {

std::optional<double> brute_force_milp(const lp::Model& model) {
  std::vector<int> int_cols;
  for (int j = 0; j < model.num_cols(); ++j) {
    if (model.col_is_integer(j)) int_cols.push_back(j);
  }
  lp::Model work = model;
  const bool maximize =
      model.objective_sense() == lp::Objective::kMaximize;
  std::optional<double> best;

  std::function<void(std::size_t)> rec = [&](std::size_t idx) {
    if (idx == int_cols.size()) {
      if (auto v = brute_force_lp(work)) {
        if (!best || (maximize ? *v > *best : *v < *best)) best = *v;
      }
      return;
    }
    const int col = int_cols[idx];
    const double lo = model.col_lower(col);
    const double hi = model.col_upper(col);
    const long vlo = static_cast<long>(std::ceil(lo - 1e-9));
    const long vhi = static_cast<long>(std::floor(hi + 1e-9));
    for (long v = vlo; v <= vhi; ++v) {
      work.set_col_bounds(col, static_cast<double>(v),
                          static_cast<double>(v));
      rec(idx + 1);
    }
    work.set_col_bounds(col, lo, hi);
  };
  rec(0);
  return best;
}

}  // namespace cubisg::testing

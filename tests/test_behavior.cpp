// Tests for behavioral models (QR/SUQR) and uncertainty bounds.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "behavior/suqr.hpp"
#include "common/rng.hpp"
#include "games/generators.hpp"

namespace cubisg::behavior {
namespace {

games::SecurityGame table1() { return games::table1_game().game; }

TEST(Suqr, AttractivenessMatchesFormula) {
  SuqrModel m({-4.0, 0.75, 0.65}, {3.0, 7.0}, {-5.0, -7.0});
  // F_i(x) = exp(w1 x + w2 Ra + w3 Pa)
  EXPECT_NEAR(m.attractiveness(0, 0.5),
              std::exp(-4.0 * 0.5 + 0.75 * 3.0 + 0.65 * -5.0), 1e-12);
  EXPECT_NEAR(m.log_attractiveness(1, 0.0), 0.75 * 7.0 + 0.65 * -7.0, 1e-12);
}

TEST(Suqr, DecreasingInCoverage) {
  SuqrModel m({-4.0, 0.75, 0.65}, {3.0}, {-5.0});
  double prev = m.attractiveness(0, 0.0);
  for (double x = 0.1; x <= 1.0; x += 0.1) {
    const double cur = m.attractiveness(0, x);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Suqr, Validation) {
  EXPECT_THROW(SuqrModel({1.0, 0.75, 0.65}, {3.0}, {-5.0}),
               InvalidModelError);  // w1 must be negative
  EXPECT_THROW(SuqrModel({-1.0, 0.75, 0.65}, {}, {}), InvalidModelError);
  EXPECT_THROW(SuqrModel({-1.0, 0.75, 0.65}, {1.0, 2.0}, {-1.0}),
               InvalidModelError);
  EXPECT_THROW(SuqrModel({-1.0, 0.75, 0.65}, {std::nan("")}, {-1.0}),
               InvalidModelError);
}

TEST(AttackProbabilities, FormDistribution) {
  auto game = table1();
  SuqrModel m({-4.0, 0.75, 0.65}, game);
  auto q = attack_probabilities(m, std::vector<double>{0.3, 0.7});
  ASSERT_EQ(q.size(), 2u);
  EXPECT_NEAR(q[0] + q[1], 1.0, 1e-12);
  EXPECT_GT(q[0], 0.0);
  EXPECT_GT(q[1], 0.0);
}

TEST(AttackProbabilities, StableForExtremeExponents) {
  // Rewards large enough to overflow exp() without log-space handling.
  SuqrModel m({-4.0, 1.0, 0.5}, {800.0, 820.0}, {-1.0, -1.0});
  auto q = attack_probabilities(m, std::vector<double>{0.5, 0.5});
  EXPECT_NEAR(q[0] + q[1], 1.0, 1e-9);
  EXPECT_GT(q[1], q[0]);  // higher reward attracts more
}

TEST(AttackProbabilities, MatchesEquation4) {
  auto game = table1();
  SuqrModel m({-4.0, 0.75, 0.65}, game);
  std::vector<double> x{0.4, 0.6};
  const double f0 = m.attractiveness(0, 0.4);
  const double f1 = m.attractiveness(1, 0.6);
  auto q = attack_probabilities(m, x);
  EXPECT_NEAR(q[0], f0 / (f0 + f1), 1e-12);
}

TEST(DefenderExpectedUtility, WeightsUtilitiesByAttackProbability) {
  auto game = table1();
  SuqrModel m({-4.0, 0.75, 0.65}, game);
  std::vector<double> x{0.5, 0.5};
  auto q = attack_probabilities(m, x);
  const double expected = q[0] * game.defender_utility(0, 0.5) +
                          q[1] * game.defender_utility(1, 0.5);
  EXPECT_NEAR(defender_expected_utility(game, m, x), expected, 1e-12);
}

TEST(QuantalResponse, HigherLambdaConcentratesOnBestTarget) {
  auto game = table1();
  QuantalResponseModel weak(0.1, game);
  QuantalResponseModel strong(5.0, game);
  std::vector<double> x{0.5, 0.5};
  auto qw = attack_probabilities(weak, x);
  auto qs = attack_probabilities(strong, x);
  // Target 1 has higher attacker utility at x=(.5,.5); the more rational
  // model must put more probability on it.
  ASSERT_GT(game.attacker_utility(1, 0.5), game.attacker_utility(0, 0.5));
  EXPECT_GT(qs[1], qw[1]);
  EXPECT_THROW(QuantalResponseModel(0.0, game), InvalidModelError);
}

// ---- SuqrIntervalBounds -------------------------------------------------

TEST(SuqrIntervalBounds, PaperCornersPinsSectionIIIValues) {
  // The paper's worked example: w1 in [-6,-2], w2 in [.5,1], w3 in [.4,.9],
  // target 1 payoffs Ra in [1,5], Pa in [-7,-3] ->
  // L1(0.3) = e^{-6*0.3 + 0.5*1 + 0.4*(-7)} = e^{-4.1},
  // U1(0.3) = e^{-2*0.3 + 1*5 + 0.9*(-3)} = e^{1.7}.
  auto ug = games::table1_game();
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals,
                       IntervalMode::kPaperCorners);
  EXPECT_NEAR(b.lower(0, 0.3), std::exp(-4.1), 1e-12);
  EXPECT_NEAR(b.upper(0, 0.3), std::exp(1.7), 1e-12);
  EXPECT_NEAR(b.log_lower(0, 0.3), -4.1, 1e-12);
  EXPECT_NEAR(b.log_upper(0, 0.3), 1.7, 1e-12);
}

TEST(SuqrIntervalBounds, OrderAndPositivity) {
  auto ug = games::table1_game();
  for (IntervalMode mode :
       {IntervalMode::kPaperCorners, IntervalMode::kExactBox}) {
    SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals, mode);
    for (std::size_t i = 0; i < 2; ++i) {
      for (double x = 0.0; x <= 1.0; x += 0.1) {
        EXPECT_GT(b.lower(i, x), 0.0);
        EXPECT_LE(b.lower(i, x), b.upper(i, x));
      }
    }
  }
}

TEST(SuqrIntervalBounds, BothEndpointsDecreaseInCoverage) {
  auto ug = games::table1_game();
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals);
  for (std::size_t i = 0; i < 2; ++i) {
    double pl = b.lower(i, 0.0), pu = b.upper(i, 0.0);
    for (double x = 0.1; x <= 1.0; x += 0.1) {
      EXPECT_LT(b.lower(i, x), pl);
      EXPECT_LT(b.upper(i, x), pu);
      pl = b.lower(i, x);
      pu = b.upper(i, x);
    }
  }
}

TEST(SuqrIntervalBounds, ExactBoxContainsEverySampledModel) {
  // Property: for any parameters inside the box, the true SUQR
  // attractiveness lies inside [L, U] computed by kExactBox.
  auto ug = games::table1_game();
  SuqrWeightIntervals w;
  SuqrIntervalBounds b(w, ug.attacker_intervals, IntervalMode::kExactBox);
  Rng rng(31);
  SampledSuqrPopulation pop(w, ug.attacker_intervals, 64, rng);
  for (std::size_t t = 0; t < pop.num_types(); ++t) {
    for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      for (std::size_t i = 0; i < 2; ++i) {
        const double f = pop.type(t).attractiveness(i, x);
        EXPECT_GE(f, b.lower(i, x) * (1 - 1e-9));
        EXPECT_LE(f, b.upper(i, x) * (1 + 1e-9));
      }
    }
  }
}

TEST(SuqrIntervalBounds, ExactBoxIsTightestValidBox) {
  // PaperCorners endpoints may lie inside the exact box (its min/max over
  // the box is wider than the corner plug-in when signs interact).
  auto ug = games::table1_game();
  SuqrIntervalBounds pc(SuqrWeightIntervals{}, ug.attacker_intervals,
                        IntervalMode::kPaperCorners);
  SuqrIntervalBounds eb(SuqrWeightIntervals{}, ug.attacker_intervals,
                        IntervalMode::kExactBox);
  for (std::size_t i = 0; i < 2; ++i) {
    for (double x : {0.0, 0.3, 0.7, 1.0}) {
      EXPECT_LE(eb.lower(i, x), pc.lower(i, x) * (1 + 1e-12));
      EXPECT_GE(eb.upper(i, x), pc.upper(i, x) * (1 - 1e-12));
    }
  }
}

TEST(SuqrIntervalBounds, Validation) {
  auto ug = games::table1_game();
  SuqrWeightIntervals bad;
  bad.w1 = Interval(-2.0, 0.5);  // not strictly negative
  EXPECT_THROW(SuqrIntervalBounds(bad, ug.attacker_intervals),
               InvalidModelError);
  SuqrWeightIntervals bad2;
  bad2.w2 = Interval(-0.5, 1.0);
  EXPECT_THROW(SuqrIntervalBounds(bad2, ug.attacker_intervals),
               InvalidModelError);
  std::vector<games::IntervalPayoffs> neg_reward = {
      {Interval(-1.0, 5.0), Interval(-7.0, -3.0)}};
  EXPECT_THROW(SuqrIntervalBounds(SuqrWeightIntervals{}, neg_reward),
               InvalidModelError);
  EXPECT_THROW(SuqrIntervalBounds(SuqrWeightIntervals{}, {}),
               InvalidModelError);
}

TEST(SuqrIntervalBounds, MidpointModelUsesBoxMidpoints) {
  auto ug = games::table1_game();
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals);
  SuqrModel mid = b.midpoint_model();
  EXPECT_DOUBLE_EQ(mid.weights().w1, -4.0);
  EXPECT_DOUBLE_EQ(mid.weights().w2, 0.75);
  EXPECT_DOUBLE_EQ(mid.weights().w3, 0.65);
  EXPECT_NEAR(mid.log_attractiveness(0, 0.0), 0.75 * 3.0 + 0.65 * -5.0,
              1e-12);
}

TEST(PointBounds, CollapsesToModel) {
  auto game = table1();
  auto model = std::make_shared<SuqrModel>(SuqrWeights{-4.0, 0.75, 0.65},
                                           game);
  PointBounds pb(model);
  for (double x : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(pb.lower(0, x), pb.upper(0, x));
    EXPECT_DOUBLE_EQ(pb.lower(0, x), model->attractiveness(0, x));
  }
  EXPECT_THROW(PointBounds(nullptr), InvalidModelError);
}

TEST(ScaledBounds, InterpolatesWidth) {
  auto ug = games::table1_game();
  auto base = std::make_shared<SuqrIntervalBounds>(SuqrWeightIntervals{},
                                                   ug.attacker_intervals);
  ScaledBounds zero(base, 0.0);
  ScaledBounds half(base, 0.5);
  ScaledBounds full(base, 1.0);
  for (double x : {0.0, 0.4, 1.0}) {
    // factor 0: point at the geometric midpoint.
    EXPECT_NEAR(zero.lower(0, x), zero.upper(0, x), 1e-9);
    // factor 1: reproduces the base bounds.
    EXPECT_NEAR(full.lower(0, x), base->lower(0, x), 1e-9);
    EXPECT_NEAR(full.upper(0, x), base->upper(0, x), 1e-9);
    // factor 0.5: nested strictly inside.
    EXPECT_GT(half.lower(0, x), base->lower(0, x));
    EXPECT_LT(half.upper(0, x), base->upper(0, x));
  }
  EXPECT_THROW(ScaledBounds(base, 1.5), InvalidModelError);
  EXPECT_THROW(ScaledBounds(nullptr, 0.5), InvalidModelError);
}

TEST(EnsembleBounds, EnvelopesEveryMember) {
  auto game = table1();
  std::vector<std::shared_ptr<const AttractivenessModel>> models;
  for (double w1 : {-6.0, -4.0, -2.5}) {
    models.push_back(std::make_shared<SuqrModel>(
        SuqrWeights{w1, 0.75, 0.65}, game));
  }
  EnsembleBounds b(models);
  EXPECT_EQ(b.num_models(), 3u);
  for (double x : {0.0, 0.3, 0.8}) {
    for (std::size_t i = 0; i < 2; ++i) {
      for (const auto& m : models) {
        EXPECT_GE(m->attractiveness(i, x), b.lower(i, x) - 1e-15);
        EXPECT_LE(m->attractiveness(i, x), b.upper(i, x) + 1e-15);
      }
      // The envelope is tight: endpoints are attained by some member.
      bool lo_hit = false, hi_hit = false;
      for (const auto& m : models) {
        lo_hit = lo_hit ||
                 std::abs(m->attractiveness(i, x) - b.lower(i, x)) < 1e-12;
        hi_hit = hi_hit ||
                 std::abs(m->attractiveness(i, x) - b.upper(i, x)) < 1e-12;
      }
      EXPECT_TRUE(lo_hit);
      EXPECT_TRUE(hi_hit);
    }
  }
}

TEST(EnsembleBounds, Validation) {
  EXPECT_THROW(EnsembleBounds({}), InvalidModelError);
  auto game = table1();
  std::vector<std::shared_ptr<const AttractivenessModel>> with_null{
      std::make_shared<SuqrModel>(SuqrWeights{}, game), nullptr};
  EXPECT_THROW(EnsembleBounds{with_null}, InvalidModelError);
  std::vector<std::shared_ptr<const AttractivenessModel>> mismatch{
      std::make_shared<SuqrModel>(SuqrWeights{}, game),
      std::make_shared<SuqrModel>(SuqrWeights{},
                                  std::vector<double>{1.0},
                                  std::vector<double>{-1.0})};
  EXPECT_THROW(EnsembleBounds{mismatch}, InvalidModelError);
}

// ---- attacker simulation -------------------------------------------------

TEST(SampledPopulation, DeterministicForSeed) {
  auto ug = games::table1_game();
  Rng r1(77), r2(77);
  SampledSuqrPopulation p1(SuqrWeightIntervals{}, ug.attacker_intervals, 16,
                           r1);
  SampledSuqrPopulation p2(SuqrWeightIntervals{}, ug.attacker_intervals, 16,
                           r2);
  std::vector<double> x{0.46, 0.54};
  EXPECT_DOUBLE_EQ(p1.mean_defender_utility(ug.game, x),
                   p2.mean_defender_utility(ug.game, x));
}

TEST(SampledPopulation, MinIsBelowMean) {
  auto ug = games::table1_game();
  Rng rng(78);
  SampledSuqrPopulation pop(SuqrWeightIntervals{}, ug.attacker_intervals, 32,
                            rng);
  std::vector<double> x{0.46, 0.54};
  EXPECT_LE(pop.min_defender_utility(ug.game, x),
            pop.mean_defender_utility(ug.game, x) + 1e-12);
}

TEST(SampledPopulation, MonteCarloConvergesToAnalyticMean) {
  auto ug = games::table1_game();
  Rng rng(79);
  SampledSuqrPopulation pop(SuqrWeightIntervals{}, ug.attacker_intervals, 8,
                            rng);
  std::vector<double> x{0.46, 0.54};
  const double analytic = pop.mean_defender_utility(ug.game, x);
  Rng sim(80);
  const double mc = pop.simulate_attacks(ug.game, x, 40000, sim);
  EXPECT_NEAR(mc, analytic, 0.15);
}

TEST(SampledPopulation, RejectsEmpty) {
  auto ug = games::table1_game();
  Rng rng(81);
  EXPECT_THROW(SampledSuqrPopulation(SuqrWeightIntervals{},
                                     ug.attacker_intervals, 0, rng),
               InvalidModelError);
}

}  // namespace
}  // namespace cubisg::behavior

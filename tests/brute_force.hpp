// Brute-force reference solvers used to validate the simplex and
// branch-and-bound implementations on small random instances.
#pragma once

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "lp/model.hpp"

namespace cubisg::testing {

/// Exhaustively enumerates basic solutions of a small LP: every choice of
/// `n` tight constraints among {rows-as-equalities, lower bounds, upper
/// bounds} defines a candidate vertex; feasible candidates are scored.
/// Returns the best objective (in the model's sense), or nullopt when no
/// feasible vertex exists.  Only valid for models whose optimum is attained
/// at a vertex (bounded feasible region), which the random generators in
/// the tests guarantee by bounding every variable.
inline std::optional<double> brute_force_lp(const lp::Model& model) {
  const int n = model.num_cols();
  const int m = model.num_rows();

  // Candidate tight constraints: (kind, index) with kind 0=row, 1=lo, 2=hi.
  struct Tight {
    int kind;
    int index;
  };
  std::vector<Tight> cands;
  for (int r = 0; r < m; ++r) cands.push_back({0, r});
  for (int j = 0; j < n; ++j) {
    if (std::isfinite(model.col_lower(j))) cands.push_back({1, j});
    if (std::isfinite(model.col_upper(j))) cands.push_back({2, j});
  }
  const int k = static_cast<int>(cands.size());

  const bool maximize = model.objective_sense() == lp::Objective::kMaximize;
  std::optional<double> best;
  std::vector<int> pick(n);

  // Enumerate all (k choose n) subsets via a simple recursive lambda.
  std::vector<double> x(n);
  auto consider = [&]() {
    Matrix a(n, n, 0.0);
    std::vector<double> rhs(n, 0.0);
    for (int i = 0; i < n; ++i) {
      const Tight& t = cands[pick[i]];
      if (t.kind == 0) {
        for (const lp::RowEntry& e : model.row_entries(t.index)) {
          a(i, e.col) = e.value;
        }
        rhs[i] = model.row_rhs(t.index);
      } else {
        a(i, t.index) = 1.0;
        rhs[i] = t.kind == 1 ? model.col_lower(t.index)
                             : model.col_upper(t.index);
      }
    }
    LuFactorization lu(a);
    if (lu.is_singular()) return;
    std::vector<double> sol = lu.solve(rhs);
    for (int j = 0; j < n; ++j) x[j] = sol[j];
    std::vector<double> xv(x.begin(), x.end());
    if (model.max_violation(xv) > 1e-7) return;
    const double obj = model.objective_value(xv);
    if (!best || (maximize ? obj > *best : obj < *best)) best = obj;
  };

  auto rec = [&](auto&& self, int start, int depth) -> void {
    if (depth == n) {
      consider();
      return;
    }
    for (int i = start; i <= k - (n - depth); ++i) {
      pick[depth] = i;
      self(self, i + 1, depth + 1);
    }
  };
  if (n <= k) rec(rec, 0, 0);
  return best;
}

/// Exhaustive MILP reference: enumerates every assignment of the integer
/// columns over their (finite, small) bound ranges, fixes them, solves the
/// continuous remainder by brute_force_lp, and returns the best objective.
std::optional<double> brute_force_milp(const lp::Model& model);

}  // namespace cubisg::testing

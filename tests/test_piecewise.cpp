// Tests for the piecewise-linear approximation machinery (Section IV.C)
// and the separable step solver.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/piecewise.hpp"
#include "core/step_solver.hpp"

namespace cubisg::core {
namespace {

TEST(Piecewise, ExactAtBreakpoints) {
  auto f = [](double x) { return std::exp(-2.0 * x); };
  PiecewiseLinear pl(f, 4);
  for (std::size_t k = 0; k <= 4; ++k) {
    const double x = k / 4.0;
    EXPECT_DOUBLE_EQ(pl.value_at_breakpoint(k), f(x));
    EXPECT_NEAR(pl.evaluate(x), f(x), 1e-12);
  }
}

TEST(Piecewise, SlopesMatchPaperFormula) {
  auto f = [](double x) { return x * x; };
  const std::size_t k_count = 5;
  PiecewiseLinear pl(f, k_count);
  for (std::size_t k = 0; k < k_count; ++k) {
    const double lo = static_cast<double>(k) / k_count;
    const double hi = static_cast<double>(k + 1) / k_count;
    // s_k = K * (f(k+1/K) - f(k/K))
    EXPECT_NEAR(pl.slope(k), k_count * (f(hi) - f(lo)), 1e-12);
  }
  EXPECT_THROW(pl.slope(5), std::out_of_range);
}

TEST(Piecewise, LinearFunctionIsReproducedExactly) {
  auto f = [](double x) { return 3.0 * x - 1.0; };
  PiecewiseLinear pl(f, 3);
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    EXPECT_NEAR(pl.evaluate(x), f(x), 1e-12);
  }
}

TEST(Piecewise, ClampsOutOfRange) {
  auto f = [](double x) { return x; };
  PiecewiseLinear pl(f, 2);
  EXPECT_NEAR(pl.evaluate(-0.5), 0.0, 1e-12);
  EXPECT_NEAR(pl.evaluate(1.5), 1.0, 1e-12);
}

TEST(Piecewise, RejectsZeroSegments) {
  EXPECT_THROW(PiecewiseLinear([](double x) { return x; }, 0),
               std::invalid_argument);
}

TEST(Piecewise, Example1FromPaper) {
  // K=5, x=0.3: x_1 = 1/5, x_2 = 0.1, x_3 = x_4 = x_5 = 0.
  auto portions = segment_portions(0.3, 5);
  ASSERT_EQ(portions.size(), 5u);
  EXPECT_NEAR(portions[0], 0.2, 1e-12);
  EXPECT_NEAR(portions[1], 0.1, 1e-12);
  EXPECT_NEAR(portions[2], 0.0, 1e-12);
  EXPECT_NEAR(portions[3], 0.0, 1e-12);
  EXPECT_NEAR(portions[4], 0.0, 1e-12);
  EXPECT_NEAR(from_segment_portions(portions), 0.3, 1e-12);
}

TEST(Piecewise, SegmentPortionsRoundTrip) {
  Rng rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 19));
    const double x = rng.uniform(0.0, 1.0);
    auto portions = segment_portions(x, k);
    EXPECT_NEAR(from_segment_portions(portions), x, 1e-12);
    // Ordered filling: once a portion is partial, the rest must be zero.
    bool partial_seen = false;
    for (double p : portions) {
      if (partial_seen) {
        EXPECT_DOUBLE_EQ(p, 0.0);
      }
      if (p < 1.0 / static_cast<double>(k) - 1e-12) partial_seen = true;
    }
  }
}

TEST(Piecewise, ApproximationErrorDecaysAsOneOverK) {
  // Lemma 1: error O(1/K) for differentiable functions.  For exp(-2x) the
  // chord error ~ max|f''|/(8K^2); we verify at least 1/K decay.
  auto f = [](double x) { return std::exp(-2.0 * x) * (3.0 * x - 1.0); };
  double prev_err = 1e9;
  for (std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
    PiecewiseLinear pl(f, k);
    const double err = max_approximation_error(f, pl);
    EXPECT_LT(err, prev_err * 0.6);  // at least geometric decay
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-2);
}

// ---- step solver ----------------------------------------------------------

TEST(StepSolver, SingleTargetPicksBestBreakpoint) {
  // phi has an interior maximum at a breakpoint.
  auto phi = [](double x) { return -(x - 0.4) * (x - 0.4); };
  std::vector<PiecewiseLinear> fs{PiecewiseLinear(phi, 5)};
  StepResult r = solve_step_dp(fs, 1.0);
  EXPECT_EQ(r.status, SolverStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 0.4, 1e-12);
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
}

TEST(StepSolver, RespectsBudget) {
  // Both targets want full coverage but the budget only allows one unit.
  auto up = [](double x) { return x; };
  std::vector<PiecewiseLinear> fs{PiecewiseLinear(up, 4),
                                  PiecewiseLinear(up, 4)};
  StepResult r = solve_step_dp(fs, 1.0);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-12);
  EXPECT_NEAR(r.objective, 1.0, 1e-12);
}

TEST(StepSolver, PrefersSteeperTarget) {
  auto steep = [](double x) { return 5.0 * x; };
  auto flat = [](double x) { return 1.0 * x; };
  std::vector<PiecewiseLinear> fs{PiecewiseLinear(flat, 4),
                                  PiecewiseLinear(steep, 4)};
  StepResult r = solve_step_dp(fs, 1.0);
  EXPECT_NEAR(r.x[1], 1.0, 1e-12);
  EXPECT_NEAR(r.x[0], 0.0, 1e-12);
}

TEST(StepSolver, LeavesBudgetUnusedWhenHarmful) {
  // Coverage strictly hurts: optimum is x = 0 despite budget 2.
  auto down = [](double x) { return -x; };
  std::vector<PiecewiseLinear> fs{PiecewiseLinear(down, 4),
                                  PiecewiseLinear(down, 4),
                                  PiecewiseLinear(down, 4)};
  StepResult r = solve_step_dp(fs, 2.0);
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
  for (double xi : r.x) EXPECT_NEAR(xi, 0.0, 1e-12);
}

TEST(StepSolver, MatchesExhaustiveGridSearch) {
  Rng rng(66);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t t_count = 2 + static_cast<std::size_t>(
        rng.uniform_int(0, 1));
    const std::size_t k_count = 3 + static_cast<std::size_t>(
        rng.uniform_int(0, 2));
    const double resources = 1.0;
    // Random piecewise values (non-concave in general).
    std::vector<std::vector<double>> vals(t_count);
    for (auto& v : vals) {
      v.resize(k_count + 1);
      for (auto& x : v) x = rng.uniform(-3.0, 3.0);
    }
    std::vector<PiecewiseLinear> fs;
    for (std::size_t i = 0; i < t_count; ++i) {
      fs.emplace_back(
          [&, i](double x) {
            return vals[i][static_cast<std::size_t>(
                std::llround(x * static_cast<double>(k_count)))];
          },
          k_count);
    }
    StepResult r = solve_step_dp(fs, resources);

    // Exhaustive: every grid assignment with total units <= R*K.
    const std::size_t units = static_cast<std::size_t>(
        std::llround(resources * static_cast<double>(k_count)));
    double best = -1e18;
    std::vector<std::size_t> take(t_count, 0);
    std::function<void(std::size_t, std::size_t, double)> rec =
        [&](std::size_t idx, std::size_t used, double acc) {
          if (idx == t_count) {
            best = std::max(best, acc);
            return;
          }
          for (std::size_t u = 0; u <= k_count && used + u <= units; ++u) {
            rec(idx + 1, used + u, acc + vals[idx][u]);
          }
        };
    rec(0, 0, 0.0);
    EXPECT_NEAR(r.objective, best, 1e-9) << "trial " << trial;
  }
}

TEST(StepSolver, FractionalBudgetFlooredConservatively) {
  // 0.5 * 3 = 1.5 units -> floored to 1 unit: the result stays feasible
  // (sum x <= 0.5) and under-approximates the true optimum by <= one
  // segment's worth.
  std::vector<PiecewiseLinear> fs{
      PiecewiseLinear([](double x) { return x; }, 3)};
  StepResult r = solve_step_dp(fs, 0.5);
  EXPECT_EQ(r.status, SolverStatus::kOptimal);
  EXPECT_LE(r.x[0], 0.5 + 1e-12);
  EXPECT_NEAR(r.x[0], 1.0 / 3.0, 1e-12);  // one grid unit
  EXPECT_LE(r.objective, 0.5);            // conservative vs true max 0.5
}

TEST(StepSolver, RejectsMismatchedSegments) {
  std::vector<PiecewiseLinear> fs{
      PiecewiseLinear([](double x) { return x; }, 3),
      PiecewiseLinear([](double x) { return x; }, 4)};
  EXPECT_THROW(solve_step_dp(fs, 1.0), InvalidModelError);
  EXPECT_THROW(solve_step_dp({}, 1.0), InvalidModelError);
}

}  // namespace
}  // namespace cubisg::core

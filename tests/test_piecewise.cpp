// Tests for the piecewise-linear approximation machinery (Section IV.C)
// and the separable step solver.
#include <cmath>
#include <limits>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/hfunction.hpp"
#include "core/piecewise.hpp"
#include "core/step_solver.hpp"

namespace cubisg::core {
namespace {

TEST(Piecewise, ExactAtBreakpoints) {
  auto f = [](double x) { return std::exp(-2.0 * x); };
  PiecewiseLinear pl(f, 4);
  for (std::size_t k = 0; k <= 4; ++k) {
    const double x = k / 4.0;
    EXPECT_DOUBLE_EQ(pl.value_at_breakpoint(k), f(x));
    EXPECT_NEAR(pl.evaluate(x), f(x), 1e-12);
  }
}

TEST(Piecewise, SlopesMatchPaperFormula) {
  auto f = [](double x) { return x * x; };
  const std::size_t k_count = 5;
  PiecewiseLinear pl(f, k_count);
  for (std::size_t k = 0; k < k_count; ++k) {
    const double lo = static_cast<double>(k) / k_count;
    const double hi = static_cast<double>(k + 1) / k_count;
    // s_k = K * (f(k+1/K) - f(k/K))
    EXPECT_NEAR(pl.slope(k), k_count * (f(hi) - f(lo)), 1e-12);
  }
  EXPECT_THROW(pl.slope(5), std::out_of_range);
}

TEST(Piecewise, LinearFunctionIsReproducedExactly) {
  auto f = [](double x) { return 3.0 * x - 1.0; };
  PiecewiseLinear pl(f, 3);
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    EXPECT_NEAR(pl.evaluate(x), f(x), 1e-12);
  }
}

TEST(Piecewise, ClampsOutOfRange) {
  auto f = [](double x) { return x; };
  PiecewiseLinear pl(f, 2);
  EXPECT_NEAR(pl.evaluate(-0.5), 0.0, 1e-12);
  EXPECT_NEAR(pl.evaluate(1.5), 1.0, 1e-12);
}

TEST(Piecewise, RejectsZeroSegments) {
  EXPECT_THROW(PiecewiseLinear([](double x) { return x; }, 0),
               std::invalid_argument);
}

TEST(Piecewise, Example1FromPaper) {
  // K=5, x=0.3: x_1 = 1/5, x_2 = 0.1, x_3 = x_4 = x_5 = 0.
  auto portions = segment_portions(0.3, 5);
  ASSERT_EQ(portions.size(), 5u);
  EXPECT_NEAR(portions[0], 0.2, 1e-12);
  EXPECT_NEAR(portions[1], 0.1, 1e-12);
  EXPECT_NEAR(portions[2], 0.0, 1e-12);
  EXPECT_NEAR(portions[3], 0.0, 1e-12);
  EXPECT_NEAR(portions[4], 0.0, 1e-12);
  EXPECT_NEAR(from_segment_portions(portions), 0.3, 1e-12);
}

TEST(Piecewise, SegmentPortionsRoundTrip) {
  Rng rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 19));
    const double x = rng.uniform(0.0, 1.0);
    auto portions = segment_portions(x, k);
    EXPECT_NEAR(from_segment_portions(portions), x, 1e-12);
    // Ordered filling: once a portion is partial, the rest must be zero.
    bool partial_seen = false;
    for (double p : portions) {
      if (partial_seen) {
        EXPECT_DOUBLE_EQ(p, 0.0);
      }
      if (p < 1.0 / static_cast<double>(k) - 1e-12) partial_seen = true;
    }
  }
}

TEST(Piecewise, SegmentPortionsRoundTripIsExact) {
  // The residual-segment construction pins from_segment_portions to
  // clamp(x) bit-for-bit, not just within tolerance: whole segments are
  // filled while fl(acc + seg) <= x, and the partial segment receives the
  // exact remainder x - acc (Sterbenz: the subtraction is exact).
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform_int(0, 49));
    double x = rng.uniform(-0.2, 1.2);
    // Bias some draws onto and next to the grid, where rounding is hardest.
    if (trial % 3 == 0) {
      x = static_cast<double>(rng.uniform_int(0, static_cast<int>(k))) /
          static_cast<double>(k);
      if (trial % 6 == 0) x = std::nextafter(x, trial % 12 == 0 ? 2.0 : -1.0);
    }
    const double xc = std::min(1.0, std::max(0.0, x));
    auto portions = segment_portions(x, k);
    EXPECT_EQ(from_segment_portions(portions), xc)
        << "k=" << k << " x=" << x;
    // Every portion stays within [0, 1/K] up to the prefix-sum drift: the
    // residual is exact w.r.t. the ROUNDED running sum, which can sit a
    // few ulps (of magnitude ~1) below the real one — K additions drift at
    // most K/2 ulps.
    const double drift = static_cast<double>(k) *
                         std::numeric_limits<double>::epsilon();
    for (double p : portions) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 / static_cast<double>(k) + drift);
    }
  }
}

TEST(Piecewise, RebuildAxpyMatchesDirectSamplingExactly) {
  // The RoundCache invariant: rebuild_axpy(L*Ud, L, c) must reproduce the
  // functor path f1_of(L, Ud, c) at every breakpoint bit-for-bit (both
  // compute L*Ud - c*L in the same order), and likewise for f2.  Exact
  // equality, not EXPECT_NEAR — the differential harness depends on it.
  Rng rng(88);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 2 + static_cast<std::size_t>(rng.uniform_int(0, 18));
    std::vector<double> lo(k + 1), up(k + 1), ud(k + 1);
    std::vector<double> lud(k + 1), uud(k + 1);
    for (std::size_t j = 0; j <= k; ++j) {
      lo[j] = rng.uniform(0.0, 5.0);
      up[j] = lo[j] + rng.uniform(0.0, 3.0);
      ud[j] = rng.uniform(-10.0, 10.0);
      lud[j] = lo[j] * ud[j];
      uud[j] = up[j] * ud[j];
    }
    PiecewiseLinear f1(std::vector<double>(k + 1, 0.0));
    PiecewiseLinear f2(std::vector<double>(k + 1, 0.0));
    for (const double c : {-7.3, -1.0, 0.0, 0.5, 4.25, 11.0}) {
      f1.rebuild_axpy(lud, lo, c);
      f2.rebuild_axpy(uud, up, c);
      for (std::size_t j = 0; j <= k; ++j) {
        EXPECT_EQ(f1.value_at_breakpoint(j), f1_of(lo[j], ud[j], c))
            << "trial " << trial << " j=" << j << " c=" << c;
        EXPECT_EQ(f2.value_at_breakpoint(j), f2_of(up[j], ud[j], c))
            << "trial " << trial << " j=" << j << " c=" << c;
      }
    }
  }
}

TEST(Piecewise, RebuildMinOfIsPointwiseMin) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 2 + static_cast<std::size_t>(rng.uniform_int(0, 10));
    std::vector<double> a(k + 1), b(k + 1);
    for (std::size_t j = 0; j <= k; ++j) {
      a[j] = rng.uniform(-5.0, 5.0);
      b[j] = rng.uniform(-5.0, 5.0);
    }
    const PiecewiseLinear fa{std::vector<double>(a)};
    const PiecewiseLinear fb{std::vector<double>(b)};
    PiecewiseLinear phi(std::vector<double>(k + 1, 0.0));
    phi.rebuild_min_of(fa, fb);
    for (std::size_t j = 0; j <= k; ++j) {
      EXPECT_EQ(phi.value_at_breakpoint(j), std::min(a[j], b[j]));
    }
  }
}

TEST(Piecewise, RebuildFromValuesMatchesValuesConstructor) {
  const std::vector<double> vals{1.0, -2.5, 0.25, 7.0};
  const PiecewiseLinear fresh{std::vector<double>(vals)};
  PiecewiseLinear rebuilt(std::vector<double>(4, 0.0));
  rebuilt.rebuild_from_values(vals);
  ASSERT_EQ(rebuilt.segments(), fresh.segments());
  for (std::size_t j = 0; j <= 3; ++j) {
    EXPECT_EQ(rebuilt.value_at_breakpoint(j), fresh.value_at_breakpoint(j));
    if (j < 3) {
      EXPECT_EQ(rebuilt.slope(j), fresh.slope(j));
    }
  }
  // Size mismatches are rejected rather than silently resized.
  EXPECT_THROW(rebuilt.rebuild_from_values(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Piecewise, ApproximationErrorDecaysAsOneOverK) {
  // Lemma 1: error O(1/K) for differentiable functions.  For exp(-2x) the
  // chord error ~ max|f''|/(8K^2); we verify at least 1/K decay.
  auto f = [](double x) { return std::exp(-2.0 * x) * (3.0 * x - 1.0); };
  double prev_err = 1e9;
  for (std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
    PiecewiseLinear pl(f, k);
    const double err = max_approximation_error(f, pl);
    EXPECT_LT(err, prev_err * 0.6);  // at least geometric decay
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-2);
}

// ---- step solver ----------------------------------------------------------

TEST(StepSolver, SingleTargetPicksBestBreakpoint) {
  // phi has an interior maximum at a breakpoint.
  auto phi = [](double x) { return -(x - 0.4) * (x - 0.4); };
  std::vector<PiecewiseLinear> fs{PiecewiseLinear(phi, 5)};
  StepResult r = solve_step_dp(fs, 1.0);
  EXPECT_EQ(r.status, SolverStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 0.4, 1e-12);
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
}

TEST(StepSolver, RespectsBudget) {
  // Both targets want full coverage but the budget only allows one unit.
  auto up = [](double x) { return x; };
  std::vector<PiecewiseLinear> fs{PiecewiseLinear(up, 4),
                                  PiecewiseLinear(up, 4)};
  StepResult r = solve_step_dp(fs, 1.0);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-12);
  EXPECT_NEAR(r.objective, 1.0, 1e-12);
}

TEST(StepSolver, PrefersSteeperTarget) {
  auto steep = [](double x) { return 5.0 * x; };
  auto flat = [](double x) { return 1.0 * x; };
  std::vector<PiecewiseLinear> fs{PiecewiseLinear(flat, 4),
                                  PiecewiseLinear(steep, 4)};
  StepResult r = solve_step_dp(fs, 1.0);
  EXPECT_NEAR(r.x[1], 1.0, 1e-12);
  EXPECT_NEAR(r.x[0], 0.0, 1e-12);
}

TEST(StepSolver, LeavesBudgetUnusedWhenHarmful) {
  // Coverage strictly hurts: optimum is x = 0 despite budget 2.
  auto down = [](double x) { return -x; };
  std::vector<PiecewiseLinear> fs{PiecewiseLinear(down, 4),
                                  PiecewiseLinear(down, 4),
                                  PiecewiseLinear(down, 4)};
  StepResult r = solve_step_dp(fs, 2.0);
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
  for (double xi : r.x) EXPECT_NEAR(xi, 0.0, 1e-12);
}

TEST(StepSolver, MatchesExhaustiveGridSearch) {
  Rng rng(66);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t t_count = 2 + static_cast<std::size_t>(
        rng.uniform_int(0, 1));
    const std::size_t k_count = 3 + static_cast<std::size_t>(
        rng.uniform_int(0, 2));
    const double resources = 1.0;
    // Random piecewise values (non-concave in general).
    std::vector<std::vector<double>> vals(t_count);
    for (auto& v : vals) {
      v.resize(k_count + 1);
      for (auto& x : v) x = rng.uniform(-3.0, 3.0);
    }
    std::vector<PiecewiseLinear> fs;
    for (std::size_t i = 0; i < t_count; ++i) {
      fs.emplace_back(
          [&, i](double x) {
            return vals[i][static_cast<std::size_t>(
                std::llround(x * static_cast<double>(k_count)))];
          },
          k_count);
    }
    StepResult r = solve_step_dp(fs, resources);

    // Exhaustive: every grid assignment with total units <= R*K.
    const std::size_t units = static_cast<std::size_t>(
        std::llround(resources * static_cast<double>(k_count)));
    double best = -1e18;
    std::vector<std::size_t> take(t_count, 0);
    std::function<void(std::size_t, std::size_t, double)> rec =
        [&](std::size_t idx, std::size_t used, double acc) {
          if (idx == t_count) {
            best = std::max(best, acc);
            return;
          }
          for (std::size_t u = 0; u <= k_count && used + u <= units; ++u) {
            rec(idx + 1, used + u, acc + vals[idx][u]);
          }
        };
    rec(0, 0, 0.0);
    EXPECT_NEAR(r.objective, best, 1e-9) << "trial " << trial;
  }
}

TEST(StepSolver, FractionalBudgetFlooredConservatively) {
  // 0.5 * 3 = 1.5 units -> floored to 1 unit: the result stays feasible
  // (sum x <= 0.5) and under-approximates the true optimum by <= one
  // segment's worth.
  std::vector<PiecewiseLinear> fs{
      PiecewiseLinear([](double x) { return x; }, 3)};
  StepResult r = solve_step_dp(fs, 0.5);
  EXPECT_EQ(r.status, SolverStatus::kOptimal);
  EXPECT_LE(r.x[0], 0.5 + 1e-12);
  EXPECT_NEAR(r.x[0], 1.0 / 3.0, 1e-12);  // one grid unit
  EXPECT_LE(r.objective, 0.5);            // conservative vs true max 0.5
}

TEST(StepSolver, FlatDpMatchesReferenceDpBitwise) {
  // solve_step_dp_flat (the reuse_rounds path) promises bit-identical
  // objective AND coverage vector to solve_step_dp, including tie-breaks.
  Rng rng(111);
  DpScratch scratch;  // deliberately reused across trials, like the solver
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t t_count =
        1 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    const std::size_t k_count =
        2 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    // Mix integral and fractional budgets; duplicate values are common
    // with this coarse grid, so ties get exercised.
    const double resources =
        rng.uniform() < 0.5
            ? static_cast<double>(rng.uniform_int(
                  1, static_cast<int>(t_count)))
            : rng.uniform(0.3, static_cast<double>(t_count));
    std::vector<double> flat(t_count * (k_count + 1));
    for (double& v : flat) {
      v = rng.uniform() < 0.25 ? 0.0 : rng.uniform(-3.0, 3.0);
    }
    std::vector<PiecewiseLinear> fs;
    for (std::size_t i = 0; i < t_count; ++i) {
      fs.emplace_back(std::vector<double>(
          flat.begin() + static_cast<std::ptrdiff_t>(i * (k_count + 1)),
          flat.begin() + static_cast<std::ptrdiff_t>((i + 1) *
                                                     (k_count + 1))));
    }
    const StepResult ref = solve_step_dp(fs, resources);
    const StepResult got =
        solve_step_dp_flat(flat.data(), t_count, k_count, resources, scratch);
    ASSERT_EQ(got.status, ref.status) << "trial " << trial;
    EXPECT_EQ(got.objective, ref.objective) << "trial " << trial;
    ASSERT_EQ(got.x.size(), ref.x.size());
    for (std::size_t i = 0; i < t_count; ++i) {
      EXPECT_EQ(got.x[i], ref.x[i]) << "trial " << trial << " target " << i;
    }
  }
}

TEST(StepSolver, RejectsMismatchedSegments) {
  std::vector<PiecewiseLinear> fs{
      PiecewiseLinear([](double x) { return x; }, 3),
      PiecewiseLinear([](double x) { return x; }, 4)};
  EXPECT_THROW(solve_step_dp(fs, 1.0), InvalidModelError);
  EXPECT_THROW(solve_step_dp({}, 1.0), InvalidModelError);
}

}  // namespace
}  // namespace cubisg::core

// Tests for the strong Stackelberg equilibrium solver.
#include <cmath>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/sse.hpp"
#include "games/generators.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::core {
namespace {

TEST(Sse, TwoTargetZeroSumEqualizesAttacker) {
  // Zero-sum 2-target game: the SSE coverage makes the attacker
  // indifferent (classic result).  Ua1 = 3 - 8x1, Ua2 = 7 - 14x2.
  games::SecurityGame g({{3.0, -5.0, 5.0, -3.0}, {7.0, -7.0, 7.0, -7.0}},
                        1.0);
  SseResult sse = solve_sse(g);
  ASSERT_EQ(sse.status, SolverStatus::kOptimal);
  const double ua1 = g.attacker_utility(0, sse.strategy[0]);
  const double ua2 = g.attacker_utility(1, sse.strategy[1]);
  EXPECT_NEAR(ua1, ua2, 1e-7);
  EXPECT_NEAR(sse.strategy[0] + sse.strategy[1], 1.0, 1e-9);
}

TEST(Sse, TieBreaksInDefendersFavor) {
  // Two identical targets for the attacker but different defender stakes:
  // the SSE assumption directs the attacker to the defender's preference.
  games::SecurityGame g({{5.0, -5.0, 1.0, -1.0}, {5.0, -5.0, 9.0, -1.0}},
                        1.0);
  std::vector<double> x{0.5, 0.5};
  // Equal attacker utilities; target 1 is better for the defender covered.
  EXPECT_NEAR(g.attacker_utility(0, 0.5), g.attacker_utility(1, 0.5), 1e-12);
  EXPECT_EQ(best_response_target(g, x), 1u);
}

TEST(Sse, BestResponsePicksMaxAttackerUtility) {
  games::SecurityGame g({{8.0, -1.0, 1.0, -8.0}, {2.0, -1.0, 1.0, -2.0}},
                        1.0);
  std::vector<double> none{0.0, 1.0};
  // Target 0 uncovered with reward 8 dominates covered target 1.
  EXPECT_EQ(best_response_target(g, none), 0u);
}

TEST(Sse, StrategyIsBestResponseConsistent) {
  // The equilibrium's attacked target must actually be a best response to
  // the equilibrium coverage.
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t t = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    auto g = games::random_game(rng, t, 0.4 * static_cast<double>(t));
    SseResult sse = solve_sse(g);
    ASSERT_EQ(sse.status, SolverStatus::kOptimal) << "trial " << trial;
    const std::size_t br = best_response_target(g, sse.strategy);
    // The attacker utility of the chosen target must be maximal (allow a
    // numeric tie with the recorded one).
    EXPECT_NEAR(g.attacker_utility(br, sse.strategy[br]),
                g.attacker_utility(sse.attacked_target,
                                   sse.strategy[sse.attacked_target]),
                1e-6)
        << "trial " << trial;
    EXPECT_NEAR(sse.defender_utility,
                g.defender_utility(sse.attacked_target,
                                   sse.strategy[sse.attacked_target]),
                1e-6);
  }
}

TEST(Sse, DominatesUniformAgainstRationalAttacker) {
  // By optimality, the SSE defender utility is at least that of any other
  // strategy evaluated against a rational attacker.
  Rng rng(92);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t t = 3 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    auto g = games::random_game(rng, t, 0.4 * static_cast<double>(t));
    SseResult sse = solve_sse(g);
    ASSERT_EQ(sse.status, SolverStatus::kOptimal);
    auto uni = games::uniform_strategy(t, g.resources());
    const std::size_t br = best_response_target(g, uni);
    EXPECT_GE(sse.defender_utility,
              g.defender_utility(br, uni[br]) - 1e-7)
        << "trial " << trial;
  }
}

TEST(Sse, SingleTarget) {
  games::SecurityGame g({{3.0, -5.0, 5.0, -3.0}}, 1.0);
  SseResult sse = solve_sse(g);
  ASSERT_EQ(sse.status, SolverStatus::kOptimal);
  EXPECT_NEAR(sse.strategy[0], 1.0, 1e-9);
  EXPECT_NEAR(sse.defender_utility, 5.0, 1e-9);
}

TEST(EpsilonResponse, MonotoneAndConvergesToFloor) {
  Rng rng(93);
  auto g = games::random_game(rng, 6, 2.0);
  auto x = games::uniform_strategy(6, 2.0);
  double prev = std::numeric_limits<double>::infinity();
  for (double eps : {0.0, 0.5, 1.0, 2.0, 100.0}) {
    const double v = epsilon_response_utility(g, x, eps);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
  // At huge epsilon: every target is in the deviation set.
  double floor_u = 1e18;
  for (std::size_t i = 0; i < 6; ++i) {
    floor_u = std::min(floor_u, g.defender_utility(i, x[i]));
  }
  EXPECT_NEAR(prev, floor_u, 1e-12);
  EXPECT_THROW(epsilon_response_utility(g, x, -1.0), InvalidModelError);
}

TEST(EpsilonResponse, SseIsFragileToAttackerImprecision) {
  // The SSE equalizes attacker utilities across its attack set, so even a
  // tiny epsilon lets the attacker pick the defender's WORST member: the
  // epsilon-response value drops from the (favorably tie-broken) SSE value
  // unless the attack set is defender-degenerate.
  Rng rng(94);
  int strictly_fragile = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto g = games::covariant_game(rng, 6, 2.0, 0.0);  // non-zero-sum
    SseResult sse = solve_sse(g);
    const double tie_broken = sse.defender_utility;
    const double pessimistic = epsilon_response_utility(g, sse.strategy,
                                                        1e-6);
    EXPECT_LE(pessimistic, tie_broken + 1e-7);
    if (pessimistic < tie_broken - 1e-6) ++strictly_fragile;
  }
  EXPECT_GE(strictly_fragile, 5);  // fragility is the norm, not the edge
}

TEST(Sse, SolverAdaptorEvaluatesWorstCase) {
  auto ug = games::table1_game();
  behavior::SuqrIntervalBounds b(behavior::SuqrWeightIntervals{},
                                 ug.attacker_intervals);
  SseSolver solver;
  DefenderSolution sol = solver.solve({ug.game, b});
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(solver.name(), "sse-rational");
  // On this zero-sum-like 2-target game the SSE equalizer is also the
  // behavioral worst-case optimum.
  EXPECT_NEAR(sol.strategy[0], 10.0 / 22.0, 1e-6);
  EXPECT_GT(sol.worst_case_utility, 0.6);
}

}  // namespace
}  // namespace cubisg::core

// Tests for the extension layer: scenario I/O, the adaptive CUBIS driver,
// the population-based baselines and the solver registry.
#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "behavior/attacker_sim.hpp"
#include "behavior/scenario.hpp"
#include "common/rng.hpp"
#include "core/adaptive.hpp"
#include "core/cubis.hpp"
#include "core/population_solvers.hpp"
#include "core/registry.hpp"
#include "games/generators.hpp"

namespace cubisg {
namespace {

using behavior::Scenario;
using behavior::SuqrWeightIntervals;

Scenario sample_scenario(std::uint64_t seed, std::size_t t = 6,
                         double r = 2.0) {
  Rng rng(seed);
  return Scenario{games::random_uncertain_game(rng, t, r, 1.5),
                  SuqrWeightIntervals{}, behavior::IntervalMode::kExactBox};
}

// ---- scenario I/O -----------------------------------------------------

TEST(Scenario, RoundTripsLosslessly) {
  Scenario s = sample_scenario(1);
  s.mode = behavior::IntervalMode::kPaperCorners;
  std::stringstream ss;
  behavior::write_scenario(ss, s);
  Scenario back = behavior::read_scenario(ss);

  ASSERT_EQ(back.game.game.num_targets(), s.game.game.num_targets());
  EXPECT_EQ(back.game.game.resources(), s.game.game.resources());
  EXPECT_EQ(back.mode, behavior::IntervalMode::kPaperCorners);
  EXPECT_EQ(back.weights.w1, s.weights.w1);
  EXPECT_EQ(back.weights.w3, s.weights.w3);
  for (std::size_t i = 0; i < s.game.game.num_targets(); ++i) {
    EXPECT_EQ(back.game.game.target(i).attacker_reward,
              s.game.game.target(i).attacker_reward);  // bit exact
    EXPECT_EQ(back.game.game.target(i).defender_penalty,
              s.game.game.target(i).defender_penalty);
    EXPECT_EQ(back.game.attacker_intervals[i].attacker_reward,
              s.game.attacker_intervals[i].attacker_reward);
  }
}

TEST(Scenario, SolvesIdenticallyAfterRoundTrip) {
  Scenario s = sample_scenario(2);
  std::stringstream ss;
  behavior::write_scenario(ss, s);
  Scenario back = behavior::read_scenario(ss);

  auto b1 = s.make_bounds();
  auto b2 = back.make_bounds();
  core::CubisOptions opt;
  opt.segments = 10;
  auto sol1 = core::CubisSolver(opt).solve({s.game.game, b1});
  auto sol2 = core::CubisSolver(opt).solve({back.game.game, b2});
  ASSERT_EQ(sol1.strategy.size(), sol2.strategy.size());
  for (std::size_t i = 0; i < sol1.strategy.size(); ++i) {
    EXPECT_DOUBLE_EQ(sol1.strategy[i], sol2.strategy[i]);
  }
}

TEST(Scenario, RejectsGarbage) {
  std::stringstream ss("bogus 1");
  EXPECT_THROW(behavior::read_scenario(ss), InvalidModelError);
  std::stringstream truncated("cubisg-scenario 1\ntargets 3 resources 1\n");
  EXPECT_THROW(behavior::read_scenario(truncated), InvalidModelError);
}

TEST(Scenario, FileHelpers) {
  Scenario s = sample_scenario(3, 3, 1.0);
  const std::string path = ::testing::TempDir() + "/cubisg_scn_test.scn";
  ASSERT_TRUE(behavior::save_scenario(path, s));
  Scenario back = behavior::load_scenario(path);
  EXPECT_EQ(back.game.game.num_targets(), 3u);
  EXPECT_THROW(behavior::load_scenario("/nonexistent/nope.scn"),
               InvalidModelError);
}

// ---- adaptive CUBIS ----------------------------------------------------

TEST(AdaptiveCubis, AtLeastAsGoodAsFixedCoarseGrid) {
  for (std::uint64_t seed : {11, 12, 13}) {
    Scenario s = sample_scenario(seed);
    auto bounds = s.make_bounds();
    core::SolveContext ctx{s.game.game, bounds};

    core::CubisOptions coarse;
    coarse.segments = 4;
    auto fixed = core::CubisSolver(coarse).solve(ctx);

    core::AdaptiveCubisOptions aopt;
    aopt.initial_segments = 4;
    aopt.max_segments = 64;
    auto adaptive = core::AdaptiveCubisSolver(aopt).solve(ctx);

    ASSERT_TRUE(adaptive.ok());
    EXPECT_GE(adaptive.worst_case_utility,
              fixed.worst_case_utility - 1e-9)
        << "seed " << seed;
  }
}

TEST(AdaptiveCubis, FindsTable1ExactOptimum) {
  auto ug = games::table1_game();
  behavior::SuqrIntervalBounds b(SuqrWeightIntervals{},
                                 ug.attacker_intervals,
                                 behavior::IntervalMode::kPaperCorners);
  core::AdaptiveCubisOptions opt;
  auto sol = core::AdaptiveCubisSolver(opt).solve({ug.game, b});
  ASSERT_TRUE(sol.ok());
  // The exact optimum is the equalizer with W ~ 0.6364.
  EXPECT_NEAR(sol.worst_case_utility, 0.6364, 0.01);
}

TEST(AdaptiveCubis, Validation) {
  core::AdaptiveCubisOptions bad;
  bad.initial_segments = 0;
  EXPECT_THROW(core::AdaptiveCubisSolver{bad}, InvalidModelError);
  core::AdaptiveCubisOptions bad2;
  bad2.initial_segments = 256;
  bad2.max_segments = 128;
  EXPECT_THROW(core::AdaptiveCubisSolver{bad2}, InvalidModelError);
}

// ---- population baselines ----------------------------------------------

struct PopFixture {
  Scenario scenario;
  std::shared_ptr<behavior::SuqrIntervalBounds> bounds;
  std::shared_ptr<behavior::SampledSuqrPopulation> population;

  explicit PopFixture(std::uint64_t seed)
      : scenario(sample_scenario(seed)),
        bounds(std::make_shared<behavior::SuqrIntervalBounds>(
            scenario.weights, scenario.game.attacker_intervals)) {
    Rng rng(seed ^ 0xF00D);
    population = std::make_shared<behavior::SampledSuqrPopulation>(
        scenario.weights, scenario.game.attacker_intervals, 40, rng);
  }
  core::SolveContext ctx() const { return {scenario.game.game, *bounds}; }
};

TEST(PopulationSolvers, RobustTypesMaximizesSampledMin) {
  PopFixture f(21);
  core::PopulationOptions opt;
  opt.population = f.population;
  opt.ascent.num_starts = 4;
  core::RobustTypesSolver solver(opt);
  auto sol = solver.solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  // Its objective is the sampled min at its own strategy.
  EXPECT_NEAR(sol.solver_objective,
              f.population->min_defender_utility(f.scenario.game.game,
                                                 sol.strategy),
              1e-9);
  // It must beat the uniform strategy on its own objective.
  auto uni = core::UniformSolver().solve(f.ctx());
  EXPECT_GE(sol.solver_objective,
            f.population->min_defender_utility(f.scenario.game.game,
                                               uni.strategy) -
                1e-9);
}

TEST(PopulationSolvers, BayesianBeatsRobustOnMean) {
  PopFixture f(22);
  core::PopulationOptions opt;
  opt.population = f.population;
  opt.ascent.num_starts = 4;
  auto robust = core::RobustTypesSolver(opt).solve(f.ctx());
  auto bayes = core::BayesianSolver(opt).solve(f.ctx());
  ASSERT_TRUE(robust.ok());
  ASSERT_TRUE(bayes.ok());
  const auto& game = f.scenario.game.game;
  // Each solver wins on its own objective (local optima allow slack).
  EXPECT_GE(f.population->mean_defender_utility(game, bayes.strategy),
            f.population->mean_defender_utility(game, robust.strategy) -
                0.05);
  EXPECT_GE(f.population->min_defender_utility(game, robust.strategy),
            f.population->min_defender_utility(game, bayes.strategy) - 0.05);
}

TEST(PopulationSolvers, IntervalWorstCaseLowerBoundsSampledMin) {
  // CUBIS's interval worst case is over ALL behaviors in the box, hence a
  // lower bound on any sampled population's min.
  PopFixture f(23);
  core::CubisOptions copt;
  copt.segments = 20;
  auto cubis = core::CubisSolver(copt).solve(f.ctx());
  const double sampled_min = f.population->min_defender_utility(
      f.scenario.game.game, cubis.strategy);
  EXPECT_GE(sampled_min, cubis.worst_case_utility - 1e-6);
}

TEST(PopulationSolvers, RequirePopulation) {
  core::PopulationOptions opt;  // population left null
  EXPECT_THROW(core::RobustTypesSolver{opt}, InvalidModelError);
  EXPECT_THROW(core::BayesianSolver{opt}, InvalidModelError);
}

// ---- registry -----------------------------------------------------------

TEST(Registry, BuildsEverySolver) {
  PopFixture f(24);
  for (const std::string& name : core::solver_names()) {
    core::SolverSpec spec;
    spec.name = name;
    spec.segments = 8;
    spec.num_starts = 2;
    spec.population = f.population;
    auto solver = core::make_solver(spec);
    ASSERT_NE(solver, nullptr) << name;
    auto sol = solver->solve(f.ctx());
    EXPECT_TRUE(sol.ok()) << name << ": "
                          << std::string(to_string(sol.status));
    EXPECT_EQ(sol.strategy.size(), f.scenario.game.game.num_targets())
        << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  core::SolverSpec spec;
  spec.name = "quantum-annealer";
  EXPECT_THROW(core::make_solver(spec), InvalidModelError);
}

TEST(Registry, PopulationSolversRequirePopulation) {
  core::SolverSpec spec;
  spec.name = "robust-types";
  EXPECT_THROW(core::make_solver(spec), InvalidModelError);
}

}  // namespace
}  // namespace cubisg

// Cross-module integration tests: the full Table I pipeline, the
// solver-comparison invariants the benches rely on, and LP model I/O.
#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/maximin.hpp"
#include "core/pasaq.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "lp/io.hpp"
#include "lp/simplex.hpp"

namespace cubisg {
namespace {

using behavior::IntervalMode;
using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

TEST(Integration, Table1EndToEnd) {
  // The full Section III story: the robust strategy clearly beats the
  // midpoint strategy in the worst case of behavioral uncertainty.
  auto ug = games::table1_game();
  SuqrIntervalBounds bounds(SuqrWeightIntervals{}, ug.attacker_intervals,
                            IntervalMode::kPaperCorners);
  core::SolveContext ctx{ug.game, bounds};

  core::CubisOptions copt;
  copt.segments = 50;
  copt.epsilon = 1e-4;
  core::DefenderSolution robust = core::CubisSolver(copt).solve(ctx);

  core::PasaqOptions popt;
  popt.segments = 50;
  popt.epsilon = 1e-4;
  popt.source = core::PasaqModelSource::kCustom;
  popt.model =
      std::make_shared<behavior::SuqrModel>(bounds.midpoint_model());
  core::DefenderSolution midpoint = core::PasaqSolver(popt).solve(ctx);

  ASSERT_TRUE(robust.ok());
  ASSERT_TRUE(midpoint.ok());
  // Strategies match the paper exactly.
  EXPECT_NEAR(robust.strategy[0], 0.46, 1e-6);
  EXPECT_NEAR(midpoint.strategy[0], 0.34, 1e-6);
  // Robust strictly better in the worst case, by a wide margin.
  EXPECT_GT(robust.worst_case_utility,
            midpoint.worst_case_utility + 0.5);
}

TEST(Integration, RobustPriceIsBoundedAgainstSampledAttackers) {
  // Robustness costs a little against the average sampled attacker but
  // protects the worst case: check both directions on Table I.
  auto ug = games::table1_game();
  SuqrIntervalBounds bounds(SuqrWeightIntervals{}, ug.attacker_intervals,
                            IntervalMode::kPaperCorners);
  core::SolveContext ctx{ug.game, bounds};

  core::CubisOptions copt;
  copt.segments = 50;
  core::DefenderSolution robust = core::CubisSolver(copt).solve(ctx);

  Rng rng(321);
  behavior::SampledSuqrPopulation pop(SuqrWeightIntervals{},
                                      ug.attacker_intervals, 200, rng);
  const double robust_mean =
      pop.mean_defender_utility(ug.game, robust.strategy);
  const double robust_min =
      pop.min_defender_utility(ug.game, robust.strategy);
  // The sampled minimum can never undercut the certified worst case.
  EXPECT_GE(robust_min, robust.worst_case_utility - 1e-6);
  EXPECT_GE(robust_mean, robust_min);
}

TEST(Integration, SolverOrderingOnRandomEnsemble) {
  // On an ensemble of random games the mean worst-case utility must order
  // as: CUBIS >= gradient-free baselines (midpoint, uniform).
  double sum_cubis = 0.0, sum_mid = 0.0, sum_uni = 0.0, sum_mm = 0.0;
  const int kGames = 5;
  for (int g = 0; g < kGames; ++g) {
    Rng rng(500 + g);
    auto ug = games::random_uncertain_game(rng, 6, 2.0, 1.5);
    SuqrIntervalBounds bounds(SuqrWeightIntervals{}, ug.attacker_intervals);
    core::SolveContext ctx{ug.game, bounds};
    core::CubisOptions copt;
    copt.segments = 20;
    sum_cubis += core::CubisSolver(copt).solve(ctx).worst_case_utility;
    sum_mid += core::PasaqSolver().solve(ctx).worst_case_utility;
    sum_uni += core::UniformSolver().solve(ctx).worst_case_utility;
    sum_mm += core::MaximinSolver().solve(ctx).worst_case_utility;
  }
  EXPECT_GT(sum_cubis, sum_mid);
  EXPECT_GT(sum_cubis, sum_uni);
  // Maximin is strong when intervals are wide (it optimizes the floor),
  // but CUBIS must stay within the approximation slack of it.
  EXPECT_GT(sum_cubis, sum_mm - kGames * 1.0);
}

TEST(Integration, LpModelRoundTripsThroughIo) {
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  const int x = m.add_col("x", 0.0, 2.5, 1.25);
  const int y = m.add_col("y", -lp::kInf, lp::kInf, -0.5);
  m.set_integer(x);
  const int r = m.add_row("r0", lp::Sense::kLe, 3.75);
  m.set_coeff(r, x, 1.0);
  m.set_coeff(r, y, 2.0e-17);

  std::stringstream ss;
  lp::write_model(ss, m);
  lp::Model back = lp::read_model(ss);
  EXPECT_EQ(back.num_cols(), 2);
  EXPECT_EQ(back.num_rows(), 1);
  EXPECT_EQ(back.objective_sense(), lp::Objective::kMaximize);
  EXPECT_TRUE(back.col_is_integer(x));
  EXPECT_FALSE(back.col_is_integer(y));
  EXPECT_DOUBLE_EQ(back.col_upper(x), 2.5);
  EXPECT_EQ(back.col_lower(y), -lp::kInf);
  EXPECT_DOUBLE_EQ(back.row_entries(0)[1].value, 2.0e-17);  // bit exact
  EXPECT_EQ(back.col_name(0), "x");
}

TEST(Integration, LpFormatExportContainsStructure) {
  lp::Model m;
  const int x = m.add_col("cov", 0.0, 1.0, 2.0);
  const int r = m.add_row("cap", lp::Sense::kLe, 1.0);
  m.set_coeff(r, x, 1.0);
  const std::string text = m.to_lp_format();
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("cov"), std::string::npos);
  EXPECT_NE(text.find("cap"), std::string::npos);
  EXPECT_NE(text.find("Bounds"), std::string::npos);
}

TEST(Integration, ReadModelRejectsGarbage) {
  std::stringstream ss("not-a-model 9");
  EXPECT_THROW(lp::read_model(ss), InvalidModelError);
}

TEST(Integration, WildlifeScenarioSolvesEndToEnd) {
  Rng rng(777);
  auto ug = games::wildlife_grid_game(rng, 3, 4, 3.0, 1.0);
  SuqrIntervalBounds bounds(SuqrWeightIntervals{}, ug.attacker_intervals);
  core::SolveContext ctx{ug.game, bounds};
  core::CubisOptions opt;
  opt.segments = 10;
  core::DefenderSolution sol = core::CubisSolver(opt).solve(ctx);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(ug.game.is_feasible_strategy(sol.strategy));
  EXPECT_GT(sol.worst_case_utility,
            core::UniformSolver().solve(ctx).worst_case_utility - 1e-9);
}

}  // namespace
}  // namespace cubisg

// End-to-end coverage for the non-simplex game families (multi-defender
// product-of-simplices and patrol-graph flow polytopes): every registered
// solver produces a feasible, audit-clean solution on both families, the
// engine's exact cache serves family scenarios bitwise, scenario files
// round-trip the coverage descriptor, and the fingerprint compat hash
// discriminates coverage spaces that share payoffs.
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "audit/verify.hpp"
#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "behavior/scenario.hpp"
#include "common/rng.hpp"
#include "core/fingerprint.hpp"
#include "core/registry.hpp"
#include "core/solvers.hpp"
#include "engine/engine.hpp"
#include "engine/solve_cache.hpp"
#include "games/coverage_space.hpp"
#include "games/generators.hpp"

namespace cubisg {
namespace {

struct FamilyFixture {
  std::string name;
  games::FamilyGame fg;
  behavior::SuqrIntervalBounds bounds;
};

FamilyFixture multi_defender_fixture(std::uint64_t seed = 31) {
  Rng rng(seed);
  auto fg = games::multi_defender_uncertain_game(rng, 3, 4, 1.2, 1.5);
  behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                      fg.game.attacker_intervals);
  return {"multi-defender", std::move(fg), std::move(bounds)};
}

FamilyFixture patrol_graph_fixture(std::uint64_t seed = 32) {
  Rng rng(seed);
  auto fg = games::patrol_graph_uncertain_game(rng, 4, 3, 1.5, 1.5);
  behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                      fg.game.attacker_intervals);
  return {"patrol-graph", std::move(fg), std::move(bounds)};
}

behavior::Scenario scenario_of(const FamilyFixture& fx) {
  return behavior::Scenario{fx.fg.game, behavior::SuqrWeightIntervals{},
                            behavior::IntervalMode::kExactBox,
                            fx.fg.coverage};
}

// Solves `fx` with the named solver over the family's coverage space.
core::DefenderSolution solve_family(const std::string& solver_name,
                                    const FamilyFixture& fx) {
  core::SolverSpec spec;
  spec.name = solver_name;
  spec.segments = 10;
  spec.epsilon = 1e-3;
  if (solver_name == "robust-types" || solver_name == "bayesian") {
    Rng rng(77);
    spec.population = std::make_shared<behavior::SampledSuqrPopulation>(
        behavior::SuqrWeightIntervals{}, fx.fg.game.attacker_intervals, 8,
        rng);
  }
  auto solver = core::make_solver(spec);
  return solver->solve({fx.fg.game.game, fx.bounds, /*budget=*/nullptr,
                        /*workspace=*/nullptr, &fx.fg.coverage});
}

void expect_clean(const FamilyFixture& fx, const std::string& solver_name) {
  SCOPED_TRACE(fx.name + " / " + solver_name);
  const core::DefenderSolution sol = solve_family(solver_name, fx);
  ASSERT_EQ(sol.strategy.size(), fx.fg.game.game.num_targets());
  EXPECT_TRUE(fx.fg.coverage.is_feasible(sol.strategy, 1e-6));

  const audit::AuditResult result =
      audit::verify(fx.fg.game.game, fx.bounds, sol);
  EXPECT_TRUE(result.findings.empty())
      << "first finding: "
      << (result.findings.empty() ? "" : result.findings[0].detail);
}

// ---- every registered solver, both families ---------------------------

TEST(Families, EverySolverAuditsCleanOnMultiDefender) {
  const FamilyFixture fx = multi_defender_fixture();
  for (const std::string& name : core::solver_names()) {
    expect_clean(fx, name);
  }
}

TEST(Families, EverySolverAuditsCleanOnPatrolGraph) {
  const FamilyFixture fx = patrol_graph_fixture();
  for (const std::string& name : core::solver_names()) {
    expect_clean(fx, name);
  }
}

// ---- exact cache: family scenarios hit bitwise ------------------------

TEST(Families, ExactCacheHitIsBitwiseOnFamilies) {
  for (const FamilyFixture& fx :
       {multi_defender_fixture(), patrol_graph_fixture()}) {
    SCOPED_TRACE(fx.name);
    core::SolverSpec spec;
    spec.name = "cubis";
    spec.segments = 10;

    engine::EngineOptions opts;
    opts.workers = 1;
    opts.cache.mode = engine::CacheMode::kExact;
    opts.cache.entries = 16;
    opts.cache.solver_config = core::canonical_solver_config(spec);
    engine::SolveEngine engine(
        std::shared_ptr<const core::DefenderSolver>(core::make_solver(spec)),
        opts);

    auto scenario =
        std::make_shared<const behavior::Scenario>(scenario_of(fx));
    auto bounds = std::make_shared<const behavior::SuqrIntervalBounds>(
        scenario->make_bounds());
    auto submit = [&]() {
      engine::SolveJob job;
      job.game = std::shared_ptr<const games::SecurityGame>(
          scenario, &scenario->game.game);
      job.bounds = bounds;
      job.scenario = scenario;
      return engine.submit(std::move(job));
    };

    engine::JobOutcome cold = submit().get();
    ASSERT_EQ(cold.status, engine::JobStatus::kCompleted);
    EXPECT_FALSE(cold.cache_hit);

    engine::JobOutcome warm = submit().get();
    ASSERT_EQ(warm.status, engine::JobStatus::kCompleted);
    EXPECT_TRUE(warm.cache_hit);
    // Bitwise: vector<double> equality is exact comparison per element.
    EXPECT_EQ(warm.solution.strategy, cold.solution.strategy);
    EXPECT_EQ(warm.solution.worst_case_utility,
              cold.solution.worst_case_utility);
  }
}

// ---- scenario IO round-trips the coverage descriptor ------------------

TEST(Families, ScenarioRoundTripPreservesCoverage) {
  for (const FamilyFixture& fx :
       {multi_defender_fixture(), patrol_graph_fixture()}) {
    SCOPED_TRACE(fx.name);
    const behavior::Scenario scenario = scenario_of(fx);
    std::ostringstream os;
    behavior::write_scenario(os, scenario);
    std::istringstream is(os.str());
    const behavior::Scenario back = behavior::read_scenario(is);
    EXPECT_EQ(back.coverage, scenario.coverage);
    EXPECT_EQ(back.coverage.descriptor(), scenario.coverage.descriptor());
  }
}

TEST(Families, LegacyScenarioLoadsWithDefaultCoverage) {
  Rng rng(5);
  auto ug = games::random_uncertain_game(rng, 6, 2.0, 1.5);
  const behavior::Scenario scenario{std::move(ug),
                                    behavior::SuqrWeightIntervals{},
                                    behavior::IntervalMode::kExactBox};
  std::ostringstream os;
  behavior::write_scenario(os, scenario);
  // The simplex setting serializes as nothing: no coverage line at all,
  // so pre-polytope files and freshly written ones stay byte-compatible.
  EXPECT_EQ(os.str().find("coverage"), std::string::npos);
  std::istringstream is(os.str());
  const behavior::Scenario back = behavior::read_scenario(is);
  EXPECT_TRUE(back.coverage.is_default());
}

// ---- fingerprint compat discriminates coverage spaces -----------------

TEST(Families, CompatHashDiscriminatesGroupBudgets) {
  // Two scenarios with identical payoffs whose coverage spaces differ
  // only in per-group budgets must never alias in any cache tier.
  Rng rng(11);
  auto ug = games::random_uncertain_game(rng, 6, 3.0, 1.5);
  const std::vector<std::size_t> groups{0, 0, 0, 1, 1, 1};

  behavior::Scenario a{ug, behavior::SuqrWeightIntervals{},
                       behavior::IntervalMode::kExactBox,
                       games::CoverageSpace::grouped(groups, {2.0, 1.0})};
  behavior::Scenario b{ug, behavior::SuqrWeightIntervals{},
                       behavior::IntervalMode::kExactBox,
                       games::CoverageSpace::grouped(groups, {1.0, 2.0})};

  const core::Fingerprint fa = core::fingerprint_scenario(a, "cfg");
  const core::Fingerprint fb = core::fingerprint_scenario(b, "cfg");
  EXPECT_NE(fa.compat, fb.compat);
  EXPECT_NE(fa.digest, fb.digest);

  // And a simplex scenario differs from both.
  behavior::Scenario s{ug, behavior::SuqrWeightIntervals{},
                       behavior::IntervalMode::kExactBox};
  const core::Fingerprint fs = core::fingerprint_scenario(s, "cfg");
  EXPECT_NE(fs.compat, fa.compat);
  EXPECT_NE(fs.compat, fb.compat);
}

}  // namespace
}  // namespace cubisg

// Name-based solver construction: every advertised name round-trips
// through make_solver, and the error paths (unknown name, missing
// population) throw InvalidModelError instead of crashing later.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/registry.hpp"
#include "games/generators.hpp"

namespace cubisg::core {
namespace {

std::shared_ptr<const behavior::SampledSuqrPopulation> make_population() {
  Rng rng(42);
  games::UncertainGame ug = games::random_uncertain_game(rng, 8, 3.0, 1.5);
  return std::make_shared<behavior::SampledSuqrPopulation>(
      behavior::SuqrWeightIntervals{}, ug.attacker_intervals, 12, rng);
}

TEST(Registry, UnknownNameThrows) {
  SolverSpec spec;
  spec.name = "no-such-solver";
  EXPECT_THROW(make_solver(spec), InvalidModelError);
  spec.name = "";
  EXPECT_THROW(make_solver(spec), InvalidModelError);
  spec.name = "CUBIS";  // names are case-sensitive
  EXPECT_THROW(make_solver(spec), InvalidModelError);
}

TEST(Registry, PopulationSolversRequirePopulation) {
  for (const char* name : {"robust-types", "bayesian"}) {
    SolverSpec spec;
    spec.name = name;
    ASSERT_FALSE(spec.population);
    EXPECT_THROW(make_solver(spec), InvalidModelError) << name;
  }
}

TEST(Registry, EveryAdvertisedNameRoundTrips) {
  const auto population = make_population();
  for (const std::string& name : solver_names()) {
    SolverSpec spec;
    spec.name = name;
    if (name == "robust-types" || name == "bayesian") {
      spec.population = population;
    }
    std::unique_ptr<DefenderSolver> solver;
    ASSERT_NO_THROW(solver = make_solver(spec)) << name;
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_FALSE(solver->name().empty()) << name;
  }
}

TEST(Registry, SpecKnobsReachTheSolver) {
  // Indirect but cheap: a solver built from a spec must actually solve.
  Rng rng(7);
  games::UncertainGame ug = games::random_uncertain_game(rng, 6, 2.0, 1.0);
  behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                      ug.attacker_intervals);
  SolverSpec spec;
  spec.name = "cubis";
  spec.segments = 8;
  spec.epsilon = 1e-2;
  auto solver = make_solver(spec);
  DefenderSolution sol = solver->solve({ug.game, bounds});
  EXPECT_TRUE(sol.ok());
  EXPECT_EQ(sol.strategy.size(), 6u);
}

}  // namespace
}  // namespace cubisg::core

// Tests for the dense matrix kernels and the LU factorization.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace cubisg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(Matrix({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  std::vector<double> x{1.0, 0.0, -1.0};
  auto y = a.multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);

  std::vector<double> z{1.0, 1.0};
  auto w = a.multiply_transposed(z);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[2], 9.0);

  Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
}

TEST(Matrix, Norms) {
  std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  Matrix m{{1.0, -7.0}, {2.0, 3.0}};
  EXPECT_DOUBLE_EQ(m.max_abs(), 7.0);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  LuFactorization lu(a);
  ASSERT_FALSE(lu.is_singular());
  auto x = lu.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(lu.determinant(), 5.0, 1e-12);
}

TEST(Lu, SolveTransposed) {
  Matrix a{{2.0, 1.0}, {4.0, 3.0}};
  LuFactorization lu(a);
  // A^T x = b  with b = (10, 7)  ->  x solves [[2,4],[1,3]] x = (10,7).
  auto x = lu.solve_transposed(std::vector<double>{10.0, 7.0});
  EXPECT_NEAR(2.0 * x[0] + 4.0 * x[1], 10.0, 1e-12);
  EXPECT_NEAR(1.0 * x[0] + 3.0 * x[1], 7.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuFactorization lu(a);
  EXPECT_TRUE(lu.is_singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve(std::vector<double>{1.0, 1.0}), NumericalError);
}

TEST(Lu, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(LuFactorization{a}, std::invalid_argument);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  LuFactorization lu(a);
  ASSERT_FALSE(lu.is_singular());
  auto x = lu.solve(std::vector<double>{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 19));
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) = rng.uniform(-5.0, 5.0);
      }
      a(r, r) += 10.0;  // diagonally dominant: comfortably nonsingular
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-10.0, 10.0);
    const auto b = a.multiply(x_true);

    LuFactorization lu(a);
    ASSERT_FALSE(lu.is_singular());
    const auto x = lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9) << "n=" << n << " trial=" << trial;
    }
    const auto bt = a.multiply_transposed(x_true);
    const auto xt = lu.solve_transposed(bt);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(xt[i], x_true[i], 1e-9);
    }
  }
}

TEST(Lu, RefinementHandlesIllConditionedChain) {
  // Bidiagonal chain with small diagonal steps: the determinant shrinks
  // geometrically (0.1^10) but the system stays solvable; the refinement
  // step keeps the residual near machine precision.  This is the matrix
  // shape the simplex produces from ordered-segment constraints.
  const std::size_t n = 10;
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 0.1;
    if (i + 1 < n) a(i, i + 1) = 1.0;
  }
  LuFactorization lu(a);
  ASSERT_FALSE(lu.is_singular());
  std::vector<double> x_true(n, 1.0);
  const auto b = a.multiply(x_true);
  const auto x = lu.solve(b);
  const auto bx = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(bx[i], b[i], 1e-10);
  }
}

TEST(Lu, RcondEstimateOrdersByConditioning) {
  Matrix good = Matrix::identity(4);
  Matrix bad{{1.0, 0.0}, {0.0, 1e-9}};
  EXPECT_GT(LuFactorization(good).rcond_estimate(),
            LuFactorization(bad).rcond_estimate());
}

}  // namespace
}  // namespace cubisg

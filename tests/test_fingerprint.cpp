// Canonical scenario fingerprints: the cross-solve cache's correctness
// rests on two properties pinned here.  Completeness: every input that can
// change a solve's bitwise result — any payoff, any interval endpoint, R,
// the weight boxes, the interval mode, the solver config, the target
// count — must change the fingerprint (a collision here would serve a
// WRONG cached solution).  Stability: equal scenarios fingerprint equally
// across rebuilds, and the byte layout never drifts silently (pinned hash
// vectors fail loudly on any layout change, forcing a deliberate bump).
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "behavior/scenario.hpp"
#include "common/rng.hpp"
#include "core/fingerprint.hpp"
#include "core/registry.hpp"
#include "games/generators.hpp"

namespace cubisg::core {
namespace {

constexpr const char* kConfig = "cubis|test-config";

behavior::Scenario make_scenario(std::uint64_t seed, std::size_t targets,
                                 double resources = 3.0,
                                 double width = 1.5) {
  Rng rng(seed);
  return behavior::Scenario{
      games::random_uncertain_game(rng, targets, resources, width),
      behavior::SuqrWeightIntervals{}, behavior::IntervalMode::kExactBox};
}

/// Rebuilds `base` with target `i`'s payoffs replaced (SecurityGame
/// validates on construction, so perturbations go through a full rebuild
/// exactly like a scenario reloaded from disk would).
behavior::Scenario with_payoffs(const behavior::Scenario& base,
                                std::size_t i, games::TargetPayoffs p) {
  std::vector<games::TargetPayoffs> payoffs;
  for (std::size_t t = 0; t < base.game.game.num_targets(); ++t) {
    payoffs.push_back(base.game.game.target(t));
  }
  payoffs[i] = p;
  return behavior::Scenario{
      games::UncertainGame{
          games::SecurityGame(std::move(payoffs),
                              base.game.game.resources()),
          base.game.attacker_intervals},
      base.weights, base.mode};
}

behavior::Scenario with_intervals(const behavior::Scenario& base,
                                  std::size_t i,
                                  games::IntervalPayoffs iv) {
  std::vector<games::IntervalPayoffs> intervals =
      base.game.attacker_intervals;
  intervals[i] = iv;
  std::vector<games::TargetPayoffs> payoffs;
  for (std::size_t t = 0; t < base.game.game.num_targets(); ++t) {
    payoffs.push_back(base.game.game.target(t));
  }
  return behavior::Scenario{
      games::UncertainGame{
          games::SecurityGame(std::move(payoffs),
                              base.game.game.resources()),
          std::move(intervals)},
      base.weights, base.mode};
}

TEST(FpFnv1a64, MatchesReferenceVectors) {
  // Same published vectors the journal's fnv1a64 pins: the two
  // implementations must never drift apart.
  EXPECT_EQ(fp_fnv1a64("", 0), 14695981039346656037ull);
  EXPECT_EQ(fp_fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fp_fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Fingerprint, EqualScenariosFingerprintEqually) {
  const behavior::Scenario a = make_scenario(7001, 12);
  const behavior::Scenario b = make_scenario(7001, 12);  // regenerated
  const Fingerprint fa = fingerprint_scenario(a, kConfig);
  const Fingerprint fb = fingerprint_scenario(b, kConfig);
  EXPECT_TRUE(fa == fb);
  EXPECT_EQ(fa.num_targets(), 12u);
  EXPECT_EQ(fa.blocks.size(), 12u * kFingerprintBlockDoubles);
  EXPECT_EQ(fingerprint_distance(fa, fb), 0.0);
}

TEST(Fingerprint, EveryPayoffFieldPerturbsDigestNotCompat) {
  const behavior::Scenario base = make_scenario(7002, 8);
  const Fingerprint f0 = fingerprint_scenario(base, kConfig);
  const games::TargetPayoffs orig = base.game.game.target(3);
  // One perturbed variant per payoff field, each keeping the game valid
  // (Ra > Pa, Rd > Pd hold after a +1e-9 nudge on a reward / -1e-9 on a
  // penalty).
  games::TargetPayoffs ra = orig, pa = orig, rd = orig, pd = orig;
  ra.attacker_reward += 1e-9;
  pa.attacker_penalty -= 1e-9;
  rd.defender_reward += 1e-9;
  pd.defender_penalty -= 1e-9;
  for (const games::TargetPayoffs& p : {ra, pa, rd, pd}) {
    const Fingerprint f = fingerprint_scenario(with_payoffs(base, 3, p),
                                               kConfig);
    EXPECT_NE(f.digest, f0.digest);
    EXPECT_EQ(f.compat, f0.compat) << "payoffs are per-target state";
    // Exactly one 8-double block differs: distance is 1 + tiny L1 tiebreak.
    const double d = fingerprint_distance(f0, f);
    EXPECT_GE(d, 1.0);
    EXPECT_LT(d, 2.0);
  }
}

TEST(Fingerprint, EveryIntervalEndpointPerturbsDigestNotCompat) {
  const behavior::Scenario base = make_scenario(7003, 8);
  const Fingerprint f0 = fingerprint_scenario(base, kConfig);
  const games::IntervalPayoffs orig = base.game.attacker_intervals[5];
  games::IntervalPayoffs variants[4] = {orig, orig, orig, orig};
  variants[0].attacker_reward = Interval(orig.attacker_reward.lo() - 1e-9,
                                         orig.attacker_reward.hi());
  variants[1].attacker_reward = Interval(orig.attacker_reward.lo(),
                                         orig.attacker_reward.hi() + 1e-9);
  variants[2].attacker_penalty = Interval(orig.attacker_penalty.lo() - 1e-9,
                                          orig.attacker_penalty.hi());
  variants[3].attacker_penalty = Interval(orig.attacker_penalty.lo(),
                                          orig.attacker_penalty.hi() + 1e-9);
  for (const games::IntervalPayoffs& iv : variants) {
    const Fingerprint f =
        fingerprint_scenario(with_intervals(base, 5, iv), kConfig);
    EXPECT_NE(f.digest, f0.digest);
    EXPECT_EQ(f.compat, f0.compat);
  }
}

TEST(Fingerprint, CompatCoversResourcesWeightsModeConfigAndShape) {
  const behavior::Scenario base = make_scenario(7004, 6);
  const Fingerprint f0 = fingerprint_scenario(base, kConfig);

  // Solver config: distinct strings must separate cache populations.
  const Fingerprint fcfg = fingerprint_scenario(base, "cubis|other-config");
  EXPECT_NE(fcfg.compat, f0.compat);
  EXPECT_NE(fcfg.digest, f0.digest);

  // Resource count R.
  behavior::Scenario res = make_scenario(7004, 6);
  {
    std::vector<games::TargetPayoffs> payoffs;
    for (std::size_t t = 0; t < res.game.game.num_targets(); ++t) {
      payoffs.push_back(res.game.game.target(t));
    }
    res.game.game = games::SecurityGame(std::move(payoffs), 2.5);
  }
  const Fingerprint fres = fingerprint_scenario(res, kConfig);
  EXPECT_NE(fres.compat, f0.compat);

  // SUQR weight box endpoint.
  behavior::Scenario weights = make_scenario(7004, 6);
  weights.weights.w2 = Interval(weights.weights.w2.lo(),
                                weights.weights.w2.hi() + 1e-9);
  EXPECT_NE(fingerprint_scenario(weights, kConfig).compat, f0.compat);

  // Interval semantics.
  behavior::Scenario mode = make_scenario(7004, 6);
  mode.mode = behavior::IntervalMode::kPaperCorners;
  EXPECT_NE(fingerprint_scenario(mode, kConfig).compat, f0.compat);

  // Target count.
  const Fingerprint fshape =
      fingerprint_scenario(make_scenario(7004, 7), kConfig);
  EXPECT_NE(fshape.compat, f0.compat);

  // Any compat mismatch makes transplanting meaningless: distance +inf.
  for (const Fingerprint* f : {&fcfg, &fres, &fshape}) {
    EXPECT_EQ(fingerprint_distance(f0, *f),
              std::numeric_limits<double>::infinity());
  }
}

TEST(Fingerprint, DistanceCountsDifferingBlocksWithL1Tiebreak) {
  const behavior::Scenario base = make_scenario(7005, 10);
  const Fingerprint f0 = fingerprint_scenario(base, kConfig);

  // Perturb k targets: the integer part of the distance is exactly k.
  behavior::Scenario three = base;
  for (std::size_t i : {1u, 4u, 8u}) {
    games::TargetPayoffs p = three.game.game.target(i);
    p.attacker_reward += 0.25;
    three = with_payoffs(three, i, p);
  }
  const double d3 = fingerprint_distance(
      f0, fingerprint_scenario(three, kConfig));
  EXPECT_EQ(std::floor(d3), 3.0);

  // Tiebreak: a tiny nudge on one target is strictly nearer than a large
  // rewrite of the same target — both differ in one block, the L1 term
  // (bounded below 1) orders them.
  games::TargetPayoffs tiny = base.game.game.target(2);
  tiny.attacker_reward += 1e-9;
  games::TargetPayoffs big = base.game.game.target(2);
  big.attacker_reward += 5.0;
  const double dtiny = fingerprint_distance(
      f0, fingerprint_scenario(with_payoffs(base, 2, tiny), kConfig));
  const double dbig = fingerprint_distance(
      f0, fingerprint_scenario(with_payoffs(base, 2, big), kConfig));
  EXPECT_LT(dtiny, dbig);
  EXPECT_GE(dtiny, 1.0);
  EXPECT_LT(dbig, 2.0);
}

TEST(Fingerprint, CanonicalSolverConfigSeparatesToleranceFields) {
  SolverSpec a;  // defaults
  SolverSpec b = a;
  EXPECT_EQ(canonical_solver_config(a), canonical_solver_config(b));
  b.epsilon = a.epsilon * (1.0 + 1e-15);  // sub-printf-precision change
  EXPECT_NE(canonical_solver_config(a), canonical_solver_config(b))
      << "%a rendering must be lossless";
  SolverSpec c = a;
  c.segments += 1;
  EXPECT_NE(canonical_solver_config(a), canonical_solver_config(c));
  SolverSpec d = a;
  d.name = "cubis-milp";
  EXPECT_NE(canonical_solver_config(a), canonical_solver_config(d));
}

// Pinned vectors: the exact digests of the paper's Table I instance under
// a fixed config string.  These change ONLY when the fingerprint byte
// layout changes — which invalidates every cached entry and must be a
// deliberate, reviewed decision (bump the header version when doing so).
TEST(Fingerprint, PinnedHashVectors) {
  const behavior::Scenario table1{games::table1_game(),
                                  behavior::SuqrWeightIntervals{},
                                  behavior::IntervalMode::kExactBox};
  const Fingerprint f = fingerprint_scenario(table1, "pinned-config");
  EXPECT_EQ(f.blocks.size(), 2u * kFingerprintBlockDoubles);
  // Re-pinned for "cubisg-fp 2" (coverage descriptor in the compat
  // prefix); the previous vectors belonged to "cubisg-fp 1".
  EXPECT_EQ(f.digest, 0xcdc315e04e3178cdull)
      << "layout drift: got digest 0x" << std::hex << f.digest;
  EXPECT_EQ(f.compat, 0x2e17c971287b5c90ull)
      << "layout drift: got compat 0x" << std::hex << f.compat;
}

}  // namespace
}  // namespace cubisg::core

// Correctness observability: solution certificates, the independent
// verifier, and the shadow auditor.
//
// The core contract under test: a clean solve from ANY registered solver
// family must audit clean (the verifier shares no state with the solvers,
// so a false positive here is a verifier bug), while a solution corrupted
// after finalize — by hand or through the deterministic fault-injection
// sites — must be refuted with the right typed code.  The engine test is
// the tsan headline: workers invoke the completion hook concurrently
// while the SCHED_IDLE audit worker drains the sample queue.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/shadow.hpp"
#include "audit/verify.hpp"
#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "core/registry.hpp"
#include "core/worst_case.hpp"
#include "engine/engine.hpp"
#include "games/generators.hpp"
#include "obs/audit_log.hpp"
#include "obs/metrics.hpp"

namespace cubisg::audit {
namespace {

struct Fixture {
  games::UncertainGame ug;
  behavior::SuqrIntervalBounds bounds;
};

Fixture make_fixture(std::uint64_t seed, std::size_t targets = 6,
                     double resources = 2.0) {
  Rng rng(seed);
  auto ug = games::random_uncertain_game(rng, targets, resources, 1.5);
  behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                      ug.attacker_intervals);
  return {std::move(ug), std::move(bounds)};
}

core::DefenderSolution solve_with(const std::string& name,
                                  const Fixture& fx,
                                  std::size_t segments = 10) {
  core::SolverSpec spec;
  spec.name = name;
  spec.segments = segments;
  spec.epsilon = 1e-3;
  if (name == "robust-types" || name == "bayesian") {
    Rng rng(99);
    spec.population = std::make_shared<behavior::SampledSuqrPopulation>(
        behavior::SuqrWeightIntervals{}, fx.ug.attacker_intervals, 12, rng);
  }
  return core::make_solver(spec)->solve({fx.ug.game, fx.bounds});
}

bool has_code(const AuditResult& r, AuditCode code) {
  for (const AuditFinding& f : r.findings) {
    if (f.code == code) return true;
  }
  return false;
}

// ---- certificate emission ----------------------------------------------

TEST(Certificate, CubisSolveCarriesBracketEvidence) {
  Fixture fx = make_fixture(101);
  core::DefenderSolution sol = solve_with("cubis", fx);
  ASSERT_TRUE(sol.ok());
  const SolutionCertificate& cert = sol.certificate;
  EXPECT_TRUE(cert.present);
  EXPECT_EQ(cert.solver, "cubis-dp");  // the registry alias's canonical name
  EXPECT_EQ(cert.targets, fx.ug.game.num_targets());
  EXPECT_DOUBLE_EQ(cert.resources, fx.ug.game.resources());
  ASSERT_TRUE(cert.has_bracket);
  EXPECT_TRUE(cert.bracket_converged);
  EXPECT_LE(cert.lb, cert.ub + 1e-12);
  EXPECT_LE(cert.ub - cert.lb, cert.epsilon + 1e-9);
  EXPECT_EQ(cert.segments, 10);
  ASSERT_FALSE(cert.rounds.empty());
  // Rounds nest and the last one lands on the certified bracket.
  for (std::size_t i = 1; i < cert.rounds.size(); ++i) {
    EXPECT_GE(cert.rounds[i].lo, cert.rounds[i - 1].lo - 1e-9);
    EXPECT_LE(cert.rounds[i].hi, cert.rounds[i - 1].hi + 1e-9);
  }
  EXPECT_NEAR(cert.rounds.back().lo, cert.lb, 1e-9);
  EXPECT_NEAR(cert.rounds.back().hi, cert.ub, 1e-9);
  // The claimed worst case is the canonical evaluator's value.
  EXPECT_NEAR(cert.claimed_worst_case,
              core::worst_case_utility(fx.ug.game, fx.bounds, sol.strategy),
              1e-9);
  EXPECT_LE(cert.budget_residual, 1e-9);
  EXPECT_LE(cert.box_residual, 1e-9);
}

TEST(Certificate, MilpBackendCarriesIncumbentBoundPair) {
  Fixture fx = make_fixture(102, 4);
  core::DefenderSolution sol = solve_with("cubis-milp", fx, 5);
  ASSERT_TRUE(sol.ok());
  const SolutionCertificate& cert = sol.certificate;
  ASSERT_TRUE(cert.has_milp);
  // Maximization step: the incumbent can never exceed its proven bound.
  EXPECT_LE(cert.milp_incumbent, cert.milp_bound + 1e-6);
  EXPECT_GE(cert.milp_nodes, 1);
}

// ---- the clean path: every solver family audits clean ------------------

TEST(Verify, CleanSolvesAcrossAllRegisteredSolversAuditClean) {
  Fixture fx = make_fixture(103, 4);
  for (const std::string& name : core::solver_names()) {
    const core::DefenderSolution sol = solve_with(name, fx, 5);
    if (sol.strategy.empty()) continue;  // nothing to audit
    const AuditResult result = verify(fx.ug.game, fx.bounds, sol);
    EXPECT_TRUE(result.ok())
        << name << " failed its audit: " << result.to_json();
    EXPECT_NEAR(result.recomputed_worst_case, sol.worst_case_utility, 1e-6)
        << name;
  }
}

// ---- refutations -------------------------------------------------------

TEST(Verify, CorruptedStrategyCoordinateIsRefuted) {
  Fixture fx = make_fixture(104);
  core::DefenderSolution sol = solve_with("cubis", fx);
  ASSERT_TRUE(sol.ok());
  ASSERT_FALSE(sol.strategy.empty());
  // The claim (and the certificate) still describe the original strategy.
  sol.strategy[0] += sol.strategy[0] > 0.5 ? -0.3 : 0.3;
  const AuditResult result = verify(fx.ug.game, fx.bounds, sol);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_code(result, AuditCode::kWorstCaseMismatch))
      << result.to_json();
  EXPECT_GT(result.max_residual, 1e-6);
}

TEST(Verify, InfeasibleBudgetIsRefuted) {
  Fixture fx = make_fixture(105);
  core::DefenderSolution sol = solve_with("cubis", fx);
  ASSERT_TRUE(sol.ok());
  for (double& xi : sol.strategy) xi = 1.0;  // sum = 6 > R = 2
  const AuditResult result = verify(fx.ug.game, fx.bounds, sol);
  EXPECT_TRUE(has_code(result, AuditCode::kInfeasibleStrategy))
      << result.to_json();
}

TEST(Verify, InvertedBracketIsMalformed) {
  Fixture fx = make_fixture(106);
  core::DefenderSolution sol = solve_with("cubis", fx);
  ASSERT_TRUE(sol.ok());
  sol.certificate.lb = sol.certificate.ub + 1.0;
  sol.certificate.rounds.clear();
  const AuditResult result = verify(fx.ug.game, fx.bounds, sol);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.worst(), AuditCode::kMalformedCertificate)
      << result.to_json();
}

TEST(Verify, CertificateForTheWrongModelIsMalformed) {
  Fixture small = make_fixture(107, 4);
  Fixture large = make_fixture(108, 8, 3.0);
  const core::DefenderSolution sol = solve_with("cubis", small, 5);
  ASSERT_TRUE(sol.ok());
  const AuditResult result = verify(large.ug.game, large.bounds, sol);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_code(result, AuditCode::kMalformedCertificate))
      << result.to_json();
}

TEST(Verify, MilpIncumbentAboveBoundIsInconsistent) {
  Fixture fx = make_fixture(109);
  core::DefenderSolution sol = solve_with("cubis", fx);
  ASSERT_TRUE(sol.ok());
  sol.certificate.has_milp = true;
  sol.certificate.milp_bound = -10.0;
  sol.certificate.milp_incumbent = -9.0;  // "better" than proven possible
  const AuditResult result = verify(fx.ug.game, fx.bounds, sol);
  EXPECT_TRUE(has_code(result, AuditCode::kMilpInconsistent))
      << result.to_json();
}

// ---- fault-injection sites: the end-to-end detection story -------------

TEST(FaultSites, CorruptSolutionSiteIsDetected) {
  if (!faultinject::compiled_in()) GTEST_SKIP();
  Fixture fx = make_fixture(110);
  faultinject::arm(faultinject::Site::kAuditCorruptSolution, 1);
  const core::DefenderSolution sol = solve_with("cubis", fx);
  faultinject::disarm_all();
  ASSERT_EQ(faultinject::fire_count(
                faultinject::Site::kAuditCorruptSolution), 1);
  const AuditResult result = verify(fx.ug.game, fx.bounds, sol);
  EXPECT_FALSE(result.ok()) << result.to_json();
  EXPECT_TRUE(has_code(result, AuditCode::kWorstCaseMismatch))
      << result.to_json();
}

TEST(FaultSites, CorruptCertificateSiteIsMalformed) {
  if (!faultinject::compiled_in()) GTEST_SKIP();
  Fixture fx = make_fixture(111);
  faultinject::arm(faultinject::Site::kAuditCorruptCertificate, 1);
  const core::DefenderSolution sol = solve_with("cubis", fx);
  faultinject::disarm_all();
  const AuditResult result = verify(fx.ug.game, fx.bounds, sol);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.worst(), AuditCode::kMalformedCertificate)
      << result.to_json();
}

// ---- record_outcome: metrics + the /auditz ring ------------------------

TEST(RecordOutcome, FailuresLandInMetricsAndAuditLog) {
#if !CUBISG_OBS_ENABLED
  GTEST_SKIP() << "metrics compiled out";
#else
  obs::AuditLog::global().clear();
  Fixture fx = make_fixture(112);
  core::DefenderSolution sol = solve_with("cubis", fx);
  ASSERT_TRUE(sol.ok());
  const auto checks_before =
      obs::Registry::global().counter("audit.checks_total").value();
  const auto failures_before =
      obs::Registry::global().counter("audit.failures_total").value();

  const AuditResult clean = verify(fx.ug.game, fx.bounds, sol);
  EXPECT_EQ(record_outcome(clean, "cubis", 7, "clean"), 0);

  sol.strategy[0] += sol.strategy[0] > 0.5 ? -0.3 : 0.3;
  const AuditResult bad = verify(fx.ug.game, fx.bounds, sol);
  ASSERT_FALSE(bad.ok());
  const std::int64_t id = record_outcome(bad, "cubis", 8, "corrupted");
  EXPECT_GT(id, 0);

  EXPECT_EQ(obs::Registry::global().counter("audit.checks_total").value(),
            checks_before + 2);
  EXPECT_EQ(obs::Registry::global().counter("audit.failures_total").value(),
            failures_before + 1);
  EXPECT_GE(obs::Registry::global().gauge("audit.max_residual").value(),
            bad.max_residual);

  const auto records = obs::AuditLog::global().recent();
  ASSERT_EQ(records.size(), 1u);  // only the failure is retained
  EXPECT_EQ(records.back().id, id);
  EXPECT_EQ(records.back().job_id, 8u);
  EXPECT_EQ(records.back().tag, "corrupted");
  EXPECT_EQ(records.back().solver, "cubis");
  EXPECT_EQ(records.back().worst_code, "worst-case-mismatch");
  EXPECT_GT(records.back().findings, 0);
  obs::AuditLog::global().clear();
#endif
}

TEST(AuditLogRing, EvictsOldestAndKeepsTotals) {
#if !CUBISG_OBS_ENABLED
  GTEST_SKIP() << "audit log compiled out";
#else
  obs::AuditLog log(3);
  for (int i = 0; i < 5; ++i) {
    obs::AuditRecord rec;
    rec.tag = "r" + std::to_string(i);
    EXPECT_EQ(log.record(std::move(rec)), i + 1);
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5);
  const auto recent = log.recent();
  ASSERT_EQ(recent.size(), 3u);  // oldest first, ids 3..5 survive
  EXPECT_EQ(recent[0].tag, "r2");
  EXPECT_EQ(recent[2].tag, "r4");
  const std::string json = log.to_json();
  EXPECT_NE(json.find("\"total\":5"), std::string::npos) << json;
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 5);  // totals survive a clear
#endif
}

// ---- the shadow auditor ------------------------------------------------

TEST(ShadowAuditor, SamplesEveryNthAndDrainsOnStop) {
  Fixture fx = make_fixture(113);
  const core::DefenderSolution sol = solve_with("cubis", fx);
  ASSERT_TRUE(sol.ok());
  auto game_sp = std::make_shared<games::SecurityGame>(fx.ug.game);
  auto bounds_sp =
      std::make_shared<behavior::SuqrIntervalBounds>(fx.bounds);

  ShadowAuditor::Options opt;
  opt.sample_every = 2;
  ShadowAuditor auditor(opt);
  auditor.start();
  for (std::uint64_t i = 0; i < 6; ++i) {
    auditor.observe(game_sp, bounds_sp, sol, i, "t");
  }
  auditor.stop();  // drains everything already queued
  EXPECT_EQ(auditor.observed(), 6u);
  EXPECT_EQ(auditor.audited(), 3u);
  EXPECT_EQ(auditor.failures(), 0u);
  EXPECT_EQ(auditor.dropped(), 0u);
}

TEST(ShadowAuditor, ConcurrentEngineCompletionHook) {
  // tsan headline: 4 workers race through on_outcome into observe() while
  // the audit worker concurrently drains and verifies.
  Fixture fx = make_fixture(114, 8, 3.0);
  auto fx_sp = std::make_shared<Fixture>(std::move(fx));
  auto game_sp =
      std::shared_ptr<const games::SecurityGame>(fx_sp, &fx_sp->ug.game);
  auto bounds_sp = std::shared_ptr<const behavior::SuqrIntervalBounds>(
      fx_sp, &fx_sp->bounds);

  core::SolverSpec spec;
  spec.name = "cubis";
  spec.segments = 8;
  spec.epsilon = 1e-3;
  std::shared_ptr<const core::DefenderSolver> solver =
      core::make_solver(spec);

  ShadowAuditor::Options aopt;
  aopt.sample_every = 1;
  ShadowAuditor auditor(aopt);
  auditor.start();

  engine::EngineOptions eopt;
  eopt.workers = 4;
  eopt.queue_capacity = 16;
  eopt.on_outcome = [&auditor](const engine::SolveJob& job,
                               const engine::JobOutcome& out) {
    if (out.status != engine::JobStatus::kCompleted) return;
    auditor.observe(job.game, job.bounds, out.solution, out.id, out.tag);
  };
  constexpr int kJobs = 16;
  {
    engine::SolveEngine eng(solver, eopt);
    std::vector<std::future<engine::JobOutcome>> futures;
    for (int i = 0; i < kJobs; ++i) {
      futures.push_back(eng.submit({game_sp, bounds_sp}));
    }
    for (auto& f : futures) {
      EXPECT_EQ(f.get().status, engine::JobStatus::kCompleted);
    }
    eng.shutdown();
  }
  auditor.stop();
  EXPECT_EQ(auditor.observed(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(auditor.audited(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(auditor.failures(), 0u);
}

TEST(ShadowAuditor, DetectsInjectedCorruptionThroughTheEngine) {
  if (!faultinject::compiled_in()) GTEST_SKIP();
#if CUBISG_OBS_ENABLED
  obs::AuditLog::global().clear();
#endif
  Fixture fx = make_fixture(115);
  auto fx_sp = std::make_shared<Fixture>(std::move(fx));
  auto game_sp =
      std::shared_ptr<const games::SecurityGame>(fx_sp, &fx_sp->ug.game);
  auto bounds_sp = std::shared_ptr<const behavior::SuqrIntervalBounds>(
      fx_sp, &fx_sp->bounds);
  core::SolverSpec spec;
  spec.name = "cubis";
  spec.segments = 8;
  std::shared_ptr<const core::DefenderSolver> solver =
      core::make_solver(spec);

  ShadowAuditor::Options aopt;
  aopt.sample_every = 1;
  ShadowAuditor auditor(aopt);
  auditor.start();
  engine::EngineOptions eopt;
  eopt.workers = 1;  // deterministic: exactly the first job is corrupted
  eopt.on_outcome = [&auditor](const engine::SolveJob& job,
                               const engine::JobOutcome& out) {
    if (out.status != engine::JobStatus::kCompleted) return;
    auditor.observe(job.game, job.bounds, out.solution, out.id, out.tag);
  };
  faultinject::arm(faultinject::Site::kAuditCorruptSolution, 1);
  {
    engine::SolveEngine eng(solver, eopt);
    std::vector<std::future<engine::JobOutcome>> futures;
    for (int i = 0; i < 3; ++i) {
      futures.push_back(eng.submit({game_sp, bounds_sp}));
    }
    for (auto& f : futures) f.get();
    eng.shutdown();
  }
  faultinject::disarm_all();
  auditor.stop();
  EXPECT_EQ(auditor.audited(), 3u);
  EXPECT_EQ(auditor.failures(), 1u);
#if CUBISG_OBS_ENABLED
  // The failure reached the /auditz ring with its typed verdict.
  const auto records = obs::AuditLog::global().recent();
  ASSERT_EQ(records.size(), 1u);
  // The +0.4 kick either breaks the value claim or (when the budget was
  // tight) overshoots it; either refutation proves detection.
  EXPECT_TRUE(records.back().worst_code == "worst-case-mismatch" ||
              records.back().worst_code == "infeasible-strategy")
      << records.back().worst_code;
  // The registry alias "cubis" resolves to the DP-backend solver.
  EXPECT_EQ(records.back().solver, "cubis-dp");
  obs::AuditLog::global().clear();
#endif
}

}  // namespace
}  // namespace cubisg::audit

// Crash-contained process isolation: the wire protocol must round-trip
// solutions losslessly, a clean process-mode solve must be bitwise-
// identical to thread mode, and the supervisor must absorb the failure
// modes it exists for — worker aborts (respawn + retry), wedged workers
// (hard-deadline SIGKILL), and poison jobs (quarantine) — without
// losing the rest of the batch.  Deliberately NOT tsan-labelled: these
// tests fork multi-threaded processes, which TSan does not support.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "behavior/scenario.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "engine/engine.hpp"
#include "engine/process_pool.hpp"
#include "games/generators.hpp"
#include "obs/metrics.hpp"

namespace cubisg::engine {
namespace {

struct FaultGuard {
  FaultGuard() { faultinject::disarm_all(); }
  ~FaultGuard() { faultinject::disarm_all(); }
};

/// A full problem instance owned by one Scenario, engine-ready.
std::shared_ptr<behavior::Scenario> make_scenario(std::uint64_t seed,
                                                  std::size_t targets,
                                                  double resources,
                                                  double width) {
  Rng rng(seed);
  return std::make_shared<behavior::Scenario>(behavior::Scenario{
      games::random_uncertain_game(rng, targets, resources, width),
      behavior::SuqrWeightIntervals{}, behavior::IntervalMode::kExactBox});
}

SolveJob job_for(const std::shared_ptr<behavior::Scenario>& scn) {
  SolveJob job;
  job.game =
      std::shared_ptr<const games::SecurityGame>(scn, &scn->game.game);
  job.bounds =
      std::make_shared<behavior::SuqrIntervalBounds>(scn->make_bounds());
  job.scenario = scn;
  return job;
}

std::shared_ptr<const core::DefenderSolver> make_solver() {
  core::CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  return std::make_shared<core::CubisSolver>(opt);
}

/// Canonical wire bytes with everything run-specific (id, clocks,
/// telemetry) zeroed: byte equality here IS bitwise solution equality —
/// strategy, bracket, certificate, every field the child serialized.
std::string canonical_bytes(const core::DefenderSolution& sol) {
  ResultFrame frame;
  frame.id = 0;
  frame.solution = sol;
  frame.solution.wall_seconds = 0.0;
  frame.solution.telemetry = {};
  return encode_result(frame);
}

void expect_identical(const core::DefenderSolution& got,
                      const core::DefenderSolution& want) {
  // Field-level first for readable failures, then the byte-level catch-all.
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(got.worst_case_utility, want.worst_case_utility);
  EXPECT_EQ(got.lb, want.lb);
  EXPECT_EQ(got.ub, want.ub);
  EXPECT_EQ(got.binary_steps, want.binary_steps);
  ASSERT_EQ(got.strategy.size(), want.strategy.size());
  for (std::size_t i = 0; i < want.strategy.size(); ++i) {
    EXPECT_EQ(got.strategy[i], want.strategy[i]) << "target " << i;
  }
  EXPECT_EQ(canonical_bytes(got), canonical_bytes(want));
}

std::int64_t counter_value(const std::string& name) {
  return obs::Registry::global().snapshot().counter(name);
}

// ---- wire protocol (runs on every platform) ---------------------------

TEST(Wire, JobFrameRoundTrip) {
  JobFrame job;
  job.id = 0x1122334455667788ull;
  job.deadline_seconds = 1.5;
  job.max_nodes = 12345;
  job.chaos_abort = true;
  job.chaos_hang = false;
  job.scenario_text = "scenario body\nwith lines\n";
  JobFrame out;
  ASSERT_TRUE(decode_job(encode_job(job), out));
  EXPECT_EQ(out.id, job.id);
  EXPECT_EQ(out.deadline_seconds, job.deadline_seconds);
  EXPECT_EQ(out.max_nodes, job.max_nodes);
  EXPECT_EQ(out.chaos_abort, job.chaos_abort);
  EXPECT_EQ(out.chaos_hang, job.chaos_hang);
  EXPECT_EQ(out.scenario_text, job.scenario_text);
}

TEST(Wire, ResultFrameRoundTripsEveryField) {
  ResultFrame r;
  r.id = 42;
  r.solution.status = SolverStatus::kDeadlineExceeded;
  r.solution.strategy = {0.25, 0.5, 0.0, 1.0};
  r.solution.worst_case_utility = -1.25;
  r.solution.solver_objective = -1.5;
  r.solution.lb = -1.5;
  r.solution.ub = -1.0;
  r.solution.binary_steps = 7;
  r.solution.milp_nodes = 99;
  r.solution.wall_seconds = 0.125;
  auto& cert = r.solution.certificate;
  cert.present = true;
  cert.solver = "cubis-dp";
  cert.targets = 4;
  cert.resources = 2.0;
  cert.has_bracket = true;
  cert.bracket_converged = false;
  cert.epsilon = 1e-3;
  cert.segments = 10;
  cert.lb = -1.5;
  cert.ub = -1.0;
  cert.rounds.push_back({-2.0, -1.0, 3, 1});
  cert.rounds.push_back({-1.5, -1.0, 0, 2});
  cert.claimed_worst_case = -1.25;
  cert.budget_residual = 0.5;
  cert.box_residual = 0.0;
  ResultFrame out;
  ASSERT_TRUE(decode_result(encode_result(r), out));
  EXPECT_EQ(out.id, r.id);
  EXPECT_EQ(out.solution.certificate.rounds.size(), 2u);
  EXPECT_EQ(out.solution.certificate.solver, "cubis-dp");
  // Byte-level identity is the real assertion: a field the codec forgot
  // would re-encode differently (or be zero) on the other side.
  EXPECT_EQ(encode_result(out), encode_result(r));
}

TEST(Wire, ErrorFrameRoundTrip) {
  ErrorFrame e;
  e.id = 7;
  e.retryable = false;
  e.message = "invalid model: 0 targets";
  ErrorFrame out;
  ASSERT_TRUE(decode_error(encode_error(e), out));
  EXPECT_EQ(out.id, e.id);
  EXPECT_EQ(out.retryable, e.retryable);
  EXPECT_EQ(out.message, e.message);
}

TEST(Wire, DecodeRejectsTruncatedPayload) {
  ResultFrame r;
  r.solution.strategy = {0.5, 0.5};
  const std::string bytes = encode_result(r);
  ResultFrame out;
  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    EXPECT_FALSE(decode_result(bytes.substr(0, cut), out))
        << "truncation at " << cut << " decoded";
  }
  EXPECT_TRUE(decode_result(bytes, out));
}

// ---- process isolation (POSIX + obs builds only) ----------------------

#define SKIP_WITHOUT_ISOLATION()                                     \
  if (!process_isolation_available())                                \
  GTEST_SKIP() << "process isolation not available on this build"

TEST(ProcessIsolation, CleanSolvesMatchThreadModeBitwise) {
  SKIP_WITHOUT_ISOLATION();
  FaultGuard guard;
  const std::vector<std::shared_ptr<behavior::Scenario>> scns = {
      make_scenario(2001, 30, 9.0, 2.0),
      make_scenario(2002, 12, 4.0, 1.5),
      make_scenario(2003, 20, 6.0, 1.0),
  };
  auto solver = make_solver();

  std::vector<core::DefenderSolution> want;
  {
    SolveEngine eng(solver, {});  // thread-mode oracle
    for (const auto& scn : scns) {
      JobOutcome out = eng.submit(job_for(scn)).get();
      ASSERT_EQ(out.status, JobStatus::kCompleted);
      want.push_back(out.solution);
    }
  }

  EngineOptions eopt;
  eopt.workers = 2;
  eopt.isolation = IsolationMode::kProcess;
  SolveEngine eng(solver, eopt);
  ASSERT_TRUE(eng.process_mode());
  for (std::size_t i = 0; i < scns.size(); ++i) {
    JobOutcome out = eng.submit(job_for(scns[i])).get();
    ASSERT_EQ(out.status, JobStatus::kCompleted) << out.error;
    EXPECT_EQ(out.attempts, 1);
    EXPECT_EQ(out.crashes, 0);
    expect_identical(out.solution, want[i]);
  }
}

TEST(ProcessIsolation, PeriodicAbortsAllRecoverBitwise) {
  SKIP_WITHOUT_ISOLATION();
  FaultGuard guard;
  auto scn = make_scenario(2004, 16, 5.0, 2.0);
  auto solver = make_solver();

  core::DefenderSolution want;
  {
    SolveEngine eng(solver, {});
    JobOutcome out = eng.submit(job_for(scn)).get();
    ASSERT_EQ(out.status, JobStatus::kCompleted);
    want = out.solution;
  }

  const std::int64_t crashes_before =
      counter_value("engine.worker_crashes_total");
  const std::int64_t quarantined_before =
      counter_value("engine.jobs_quarantined_total");

  // Every 3rd job-dispatch poll crashes the worker: with 12 jobs on one
  // worker several crash once and succeed on the respawned worker.
  faultinject::arm(faultinject::Site::kWorkerAbort, /*fire_count=*/-1,
                   /*skip=*/0, /*period=*/3);
  EngineOptions eopt;
  eopt.workers = 1;
  eopt.isolation = IsolationMode::kProcess;
  eopt.retry.max_crashes = 2;
  SolveEngine eng(solver, eopt);
  ASSERT_TRUE(eng.process_mode());

  int recovered = 0;
  for (int i = 0; i < 12; ++i) {
    JobOutcome out = eng.submit(job_for(scn)).get();
    ASSERT_EQ(out.status, JobStatus::kCompleted) << out.error;
    expect_identical(out.solution, want);
    if (out.crashes > 0) ++recovered;
  }
  faultinject::disarm_all();
  EXPECT_GT(recovered, 0) << "chaos never fired";
  EXPECT_GT(counter_value("engine.worker_crashes_total"), crashes_before);
  EXPECT_EQ(counter_value("engine.jobs_quarantined_total"),
            quarantined_before);
}

TEST(ProcessIsolation, PoisonJobQuarantinedRestOfBatchFinishes) {
  SKIP_WITHOUT_ISOLATION();
  FaultGuard guard;
  auto scn = make_scenario(2005, 14, 4.0, 1.5);
  auto solver = make_solver();

  const std::int64_t quarantined_before =
      counter_value("engine.jobs_quarantined_total");

  // One worker, FIFO: the first job's dispatches consume all three
  // fires (initial attempt + 2 crash retries), so it alone exceeds
  // max_crashes = 2 and is quarantined; later jobs run clean.
  faultinject::arm(faultinject::Site::kWorkerAbort, /*fire_count=*/3);
  EngineOptions eopt;
  eopt.workers = 1;
  eopt.isolation = IsolationMode::kProcess;
  eopt.retry.max_crashes = 2;
  eopt.retry.backoff_initial_ms = 5.0;
  SolveEngine eng(solver, eopt);
  ASSERT_TRUE(eng.process_mode());

  std::vector<std::future<JobOutcome>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(eng.submit(job_for(scn)));
  JobOutcome poison = futs[0].get();
  EXPECT_EQ(poison.status, JobStatus::kQuarantined);
  EXPECT_EQ(poison.crashes, 3);
  for (std::size_t i = 1; i < futs.size(); ++i) {
    JobOutcome out = futs[i].get();
    EXPECT_EQ(out.status, JobStatus::kCompleted) << out.error;
  }
  faultinject::disarm_all();
  EXPECT_EQ(counter_value("engine.jobs_quarantined_total"),
            quarantined_before + 1);
}

TEST(ProcessIsolation, FirstCrashFailsJobWhenMaxCrashesZero) {
  SKIP_WITHOUT_ISOLATION();
  FaultGuard guard;
  auto scn = make_scenario(2006, 10, 3.0, 1.0);
  auto solver = make_solver();

  faultinject::arm(faultinject::Site::kWorkerAbort, /*fire_count=*/1);
  EngineOptions eopt;
  eopt.workers = 1;
  eopt.isolation = IsolationMode::kProcess;
  eopt.retry.max_crashes = 0;
  SolveEngine eng(solver, eopt);
  ASSERT_TRUE(eng.process_mode());

  JobOutcome crashed = eng.submit(job_for(scn)).get();
  EXPECT_EQ(crashed.status, JobStatus::kWorkerCrashed);
  EXPECT_EQ(crashed.crashes, 1);
  faultinject::disarm_all();
  // The worker respawns: the engine stays serviceable after the failure.
  JobOutcome clean = eng.submit(job_for(scn)).get();
  EXPECT_EQ(clean.status, JobStatus::kCompleted) << clean.error;
}

TEST(ProcessIsolation, WedgedWorkerKilledPastDeadlineThenRecovers) {
  SKIP_WITHOUT_ISOLATION();
  FaultGuard guard;
  auto scn = make_scenario(2007, 10, 3.0, 1.0);
  auto solver = make_solver();

  // The wedged child keeps heartbeating, so only the hard deadline
  // (job deadline + kill grace) ends it: SIGKILL, crash-retry, solve.
  faultinject::arm(faultinject::Site::kWorkerHang, /*fire_count=*/1);
  EngineOptions eopt;
  eopt.workers = 1;
  eopt.isolation = IsolationMode::kProcess;
  eopt.retry.max_crashes = 2;
  eopt.kill_grace_seconds = 0.3;
  SolveEngine eng(solver, eopt);
  ASSERT_TRUE(eng.process_mode());

  SolveJob job = job_for(scn);
  job.deadline_seconds = 0.3;
  JobOutcome out = eng.submit(std::move(job)).get();
  EXPECT_EQ(out.status, JobStatus::kCompleted) << out.error;
  EXPECT_EQ(out.crashes, 1);
  EXPECT_TRUE(out.solution.ok());
}

TEST(ProcessIsolation, JobWithoutScenarioRunsInProcess) {
  SKIP_WITHOUT_ISOLATION();
  FaultGuard guard;
  auto scn = make_scenario(2008, 10, 3.0, 1.0);
  auto solver = make_solver();

  EngineOptions eopt;
  eopt.isolation = IsolationMode::kProcess;
  SolveEngine eng(solver, eopt);
  ASSERT_TRUE(eng.process_mode());

  SolveJob job = job_for(scn);
  job.scenario = nullptr;  // no text form -> in-process fallback
  JobOutcome out = eng.submit(std::move(job)).get();
  EXPECT_EQ(out.status, JobStatus::kCompleted) << out.error;
  EXPECT_TRUE(out.solution.ok());
}

}  // namespace
}  // namespace cubisg::engine

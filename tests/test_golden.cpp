// Golden end-to-end fixtures: medium-to-large CUBIS instances with pinned
// results, guarding the warm-started binary search against silent drift.
// Each tests/golden/*.txt file records the instance recipe (seed + sizes —
// the game itself is regenerated, not stored) and the expected solve
// outputs.  Regenerate after an INTENTIONAL behavior change with
//
//   CUBISG_GOLDEN_REGEN=1 ./build/tests/test_golden
//
// which rewrites the fixture files in the source tree.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "games/generators.hpp"

#ifndef CUBISG_GOLDEN_DIR
#error "CUBISG_GOLDEN_DIR must point at tests/golden"
#endif

namespace cubisg::core {
namespace {

using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

std::map<std::string, std::string> parse_fixture(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    EXPECT_NE(eq, std::string::npos) << path << ": bad line: " << line;
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

double num(const std::map<std::string, std::string>& kv,
           const std::string& key) {
  const auto it = kv.find(key);
  EXPECT_NE(it, kv.end()) << "missing key " << key;
  return std::stod(it->second);
}

struct GoldenCase {
  const char* file;
};

class GoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTest, SolveMatchesPinnedResult) {
  const std::string path =
      std::string(CUBISG_GOLDEN_DIR) + "/" + GetParam().file;
  auto kv = parse_fixture(path);

  const auto seed = static_cast<std::uint64_t>(num(kv, "seed"));
  const auto targets = static_cast<std::size_t>(num(kv, "targets"));
  const double resources = num(kv, "resources");
  const double width = num(kv, "width");
  Rng rng(seed);
  const games::UncertainGame ug =
      games::random_uncertain_game(rng, targets, resources, width);
  const SuqrIntervalBounds bounds(SuqrWeightIntervals{},
                                  ug.attacker_intervals);

  CubisOptions opt;
  opt.segments = static_cast<std::size_t>(num(kv, "segments"));
  opt.epsilon = num(kv, "epsilon");
  const DefenderSolution sol =
      CubisSolver(opt).solve(SolveContext{ug.game, bounds});
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol.ub - sol.lb, opt.epsilon + 1e-12);

  if (std::getenv("CUBISG_GOLDEN_REGEN") != nullptr) {
    std::ostringstream out;
    out.precision(17);
    out << "# Golden CUBIS fixture — regenerate with CUBISG_GOLDEN_REGEN=1"
        << " ./test_golden\n"
        << "seed=" << seed << "\ntargets=" << targets
        << "\nresources=" << resources << "\nwidth=" << width
        << "\nsegments=" << opt.segments << "\nepsilon=" << opt.epsilon
        << "\nexpected_lb=" << sol.lb << "\nexpected_ub=" << sol.ub
        << "\nexpected_worst_case=" << sol.worst_case_utility
        << "\nexpected_binary_steps=" << sol.binary_steps << "\n";
    std::ofstream rewrite(path);
    ASSERT_TRUE(rewrite.good()) << "cannot rewrite " << path;
    rewrite << out.str();
    GTEST_SKIP() << "regenerated " << path;
  }

  // 1e-6: far below the epsilon + O(1/K) guarantee, far above any honest
  // cross-platform floating-point wobble in a deterministic pipeline.
  EXPECT_NEAR(sol.lb, num(kv, "expected_lb"), 1e-6);
  EXPECT_NEAR(sol.ub, num(kv, "expected_ub"), 1e-6);
  EXPECT_NEAR(sol.worst_case_utility, num(kv, "expected_worst_case"), 1e-6);
  EXPECT_EQ(static_cast<double>(sol.binary_steps),
            num(kv, "expected_binary_steps"));
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, GoldenTest,
    ::testing::Values(GoldenCase{"t50_k5.txt"}, GoldenCase{"t200_k10.txt"},
                      GoldenCase{"t500_k10.txt"}),
    [](const ::testing::TestParamInfo<GoldenCase>& pinfo) {
      std::string name = pinfo.param.file;
      for (char& ch : name) {
        if (ch == '.' || ch == '/') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace cubisg::core

// Cross-solve cache differential harness: the cache must be invisible in
// the results.  An exact hit returns a solution bitwise-identical (under
// the batch journal's canonical digest, which zeroes the job id, wall
// clocks and telemetry) to a cold solve, re-stamped with the NEW job's
// identity; a transplanted solve — warm-started from the nearest cached
// neighbor's tables — is bitwise-identical to a cold solve even when
// fault injection rejects the seed mid-ladder.  Both properties are
// checked against every registered solver / the CUBIS table backends,
// and under concurrent mixed hit/miss/transplant load (the tsan
// headline).  The eviction golden pins the LRU's observable behavior.
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "behavior/attacker_sim.hpp"
#include "behavior/scenario.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "core/fingerprint.hpp"
#include "core/registry.hpp"
#include "engine/engine.hpp"
#include "engine/journal.hpp"
#include "engine/process_pool.hpp"
#include "engine/solve_cache.hpp"
#include "games/generators.hpp"

#ifndef CUBISG_GOLDEN_DIR
#error "CUBISG_GOLDEN_DIR must point at tests/golden"
#endif

namespace cubisg::engine {
namespace {

struct FaultGuard {
  FaultGuard() { faultinject::disarm_all(); }
  ~FaultGuard() { faultinject::disarm_all(); }
};

/// A scenario wrapped with engine-compatible shared ownership: jobs
/// reference the game/bounds through aliasing pointers, exactly like the
/// CLI's serve/batch loops.
struct Instance {
  std::shared_ptr<const behavior::Scenario> scenario;
  std::shared_ptr<const behavior::SuqrIntervalBounds> bounds;
  std::shared_ptr<const games::SecurityGame> game;
};

Instance wrap(behavior::Scenario s) {
  auto sp = std::make_shared<behavior::Scenario>(std::move(s));
  Instance inst;
  inst.scenario = sp;
  inst.bounds =
      std::make_shared<behavior::SuqrIntervalBounds>(sp->make_bounds());
  inst.game =
      std::shared_ptr<const games::SecurityGame>(sp, &sp->game.game);
  return inst;
}

behavior::Scenario make_scenario(std::uint64_t seed, std::size_t targets,
                                 double resources, double width) {
  Rng rng(seed);
  return behavior::Scenario{
      games::random_uncertain_game(rng, targets, resources, width),
      behavior::SuqrWeightIntervals{}, behavior::IntervalMode::kExactBox};
}

/// The near-miss generator: `base` with target `i`'s attacker reward
/// nudged by `delta` (same shape, same R, same weights — compat-equal,
/// so the cached solve of `base` is a transplant donor for the result).
behavior::Scenario perturb_target(const behavior::Scenario& base,
                                  std::size_t i, double delta) {
  std::vector<games::TargetPayoffs> payoffs;
  for (std::size_t t = 0; t < base.game.game.num_targets(); ++t) {
    payoffs.push_back(base.game.game.target(t));
  }
  payoffs[i].attacker_reward += delta;
  return behavior::Scenario{
      games::UncertainGame{
          games::SecurityGame(std::move(payoffs),
                              base.game.game.resources()),
          base.game.attacker_intervals},
      base.weights, base.mode};
}

SolveJob job_for(const Instance& inst) {
  SolveJob job;
  job.game = inst.game;
  job.bounds = inst.bounds;
  job.scenario = inst.scenario;
  return job;
}

/// Canonical solution digest, mirroring the CLI's journal digest: the
/// wire encoding with id, wall clock and telemetry zeroed.  "Bitwise-
/// identical" throughout this file means equal under this digest — the
/// exemption set is exactly the one process isolation already has.
std::uint64_t digest(const core::DefenderSolution& solution) {
  ResultFrame frame;
  frame.id = 0;
  frame.solution = solution;
  frame.solution.wall_seconds = 0.0;
  frame.solution.telemetry = {};
  const std::string bytes = encode_result(frame);
  return fnv1a64(bytes.data(), bytes.size());
}

core::SolverSpec spec_for(const std::string& name, const Instance& inst) {
  core::SolverSpec spec;
  spec.name = name;
  spec.segments = 6;
  spec.epsilon = 1e-2;
  spec.num_starts = 2;  // keep the gradient-based solvers quick
  if (name == "robust-types" || name == "bayesian") {
    Rng rng(spec.seed);
    spec.population = std::make_shared<behavior::SampledSuqrPopulation>(
        inst.scenario->weights, inst.scenario->game.attacker_intervals,
        /*num_types=*/8, rng);
  }
  return spec;
}

EngineOptions cache_options(CacheMode mode, const core::SolverSpec& spec,
                            std::size_t workers = 1,
                            std::size_t entries = 8) {
  EngineOptions eopt;
  eopt.workers = workers;
  eopt.queue_capacity = 64;
  eopt.cache.mode = mode;
  eopt.cache.entries = entries;
  eopt.cache.solver_config = core::canonical_solver_config(spec);
  return eopt;
}

// ---------------------------------------------------------------------------
// Headline, part 1: for EVERY registered solver, an exact cache hit is
// bitwise-identical to the cold solve and carries the new job's identity
// (fresh id — the stale-id hazard the --resume regression guards).
TEST(SolveCache, ExactHitsBitwiseAcrossEveryRegisteredSolver) {
  const Instance inst = wrap(make_scenario(8001, 10, 3.0, 1.0));
  for (const std::string& name : core::solver_names()) {
    SCOPED_TRACE(name);
    const core::SolverSpec spec = spec_for(name, inst);
    std::shared_ptr<const core::DefenderSolver> solver =
        core::make_solver(spec);

    // Cold oracle: no cache at all.
    EngineOptions cold;
    cold.workers = 1;
    SolveEngine eng_cold(solver, cold);
    const JobOutcome want = eng_cold.submit(job_for(inst)).get();
    eng_cold.shutdown();
    ASSERT_EQ(want.status, JobStatus::kCompleted) << want.error;
    ASSERT_EQ(want.solution.status, SolverStatus::kOptimal)
        << "harness expects a clean optimal solve from every solver";

    SolveEngine eng(solver, cache_options(CacheMode::kExact, spec));
    const JobOutcome first = eng.submit(job_for(inst)).get();
    const JobOutcome second = eng.submit(job_for(inst)).get();
    ASSERT_NE(eng.cache(), nullptr);
    const CacheStats st = eng.cache()->stats();
    eng.shutdown();

    ASSERT_EQ(first.status, JobStatus::kCompleted) << first.error;
    EXPECT_FALSE(first.cache_hit);
    EXPECT_EQ(digest(first.solution), digest(want.solution));

    ASSERT_EQ(second.status, JobStatus::kCompleted) << second.error;
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(digest(second.solution), digest(want.solution));
    EXPECT_NE(second.id, first.id)
        << "a cached result must never resurface under a stale job id";
    EXPECT_EQ(st.hits, 1);
    EXPECT_EQ(st.misses, 1);
    EXPECT_EQ(st.entries, 1u);
  }
}

// Headline, part 2: a transplanted solve — warm-started from the nearest
// cached neighbor's breakpoint tables (and, on the MILP backend, its
// step-MILP skeleton) — is bitwise-identical to a cold solve.
TEST(SolveCache, TransplantedSolvesBitwiseIdenticalToCold) {
  for (const bool milp : {false, true}) {
    SCOPED_TRACE(milp ? "cubis-milp" : "cubis");
    const Instance a =
        wrap(make_scenario(8101, milp ? 8 : 16, 3.0, 1.0));
    const Instance b = wrap(perturb_target(*a.scenario, 2, 0.5));
    core::SolverSpec spec = spec_for(milp ? "cubis-milp" : "cubis", a);
    spec.segments = milp ? 5 : 8;
    std::shared_ptr<const core::DefenderSolver> solver =
        core::make_solver(spec);

    EngineOptions cold;
    cold.workers = 1;
    SolveEngine eng_cold(solver, cold);
    const JobOutcome want = eng_cold.submit(job_for(b)).get();
    eng_cold.shutdown();
    ASSERT_EQ(want.status, JobStatus::kCompleted) << want.error;
    ASSERT_EQ(want.solution.status, SolverStatus::kOptimal);

    SolveEngine eng(solver, cache_options(CacheMode::kTransplant, spec));
    const JobOutcome oa = eng.submit(job_for(a)).get();
    ASSERT_EQ(oa.status, JobStatus::kCompleted) << oa.error;
    ASSERT_EQ(oa.solution.status, SolverStatus::kOptimal);
    const JobOutcome ob = eng.submit(job_for(b)).get();
    const CacheStats st = eng.cache()->stats();
    eng.shutdown();

    ASSERT_EQ(ob.status, JobStatus::kCompleted) << ob.error;
    EXPECT_FALSE(ob.cache_hit) << "a perturbed scenario is not an exact hit";
    EXPECT_TRUE(ob.cache_transplant)
        << "compat-equal neighbor with 1 differing target must donate";
    EXPECT_EQ(digest(ob.solution), digest(want.solution))
        << "transplant changed the result — the adopt/repair ladder leaked";
    EXPECT_EQ(st.transplants, 1);
    EXPECT_EQ(st.transplant_rejects, 0);
    EXPECT_EQ(st.entries, 2u);
  }
}

// Fault-injected rejection: when the transplant-reject site trips the
// ladder, the solve falls back to a cold build — still bitwise-identical —
// and the reject is counted instead of the transplant.
TEST(SolveCache, FaultInjectedRejectionStaysBitwiseAndCounted) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "fault hooks compiled out";
  FaultGuard guard;
  const Instance a = wrap(make_scenario(8111, 12, 4.0, 1.0));
  const Instance b = wrap(perturb_target(*a.scenario, 5, 0.25));
  core::SolverSpec spec = spec_for("cubis", a);
  std::shared_ptr<const core::DefenderSolver> solver =
      core::make_solver(spec);

  EngineOptions cold;
  cold.workers = 1;
  SolveEngine eng_cold(solver, cold);
  const JobOutcome want = eng_cold.submit(job_for(b)).get();
  eng_cold.shutdown();
  ASSERT_EQ(want.status, JobStatus::kCompleted) << want.error;

  SolveEngine eng(solver, cache_options(CacheMode::kTransplant, spec));
  ASSERT_EQ(eng.submit(job_for(a)).get().status, JobStatus::kCompleted);
  faultinject::arm(faultinject::Site::kTransplantReject, /*fire_count=*/1);
  const JobOutcome ob = eng.submit(job_for(b)).get();
  faultinject::disarm_all();
  const CacheStats st = eng.cache()->stats();
  eng.shutdown();

  ASSERT_EQ(ob.status, JobStatus::kCompleted) << ob.error;
  EXPECT_FALSE(ob.cache_transplant);
  EXPECT_EQ(st.transplant_rejects, 1);
  EXPECT_EQ(st.transplants, 0);
  EXPECT_EQ(digest(ob.solution), digest(want.solution))
      << "a rejected seed must leave no trace in the result";
}

// tsan headline: 4 workers against one transplant-mode cache, with a job
// mix engineered to exercise every path concurrently — exact hits (the
// repeats), transplants (compat-equal perturbations), plain misses (a
// different shape) — while every result stays bitwise-identical to its
// sequential cold oracle.
TEST(SolveCache, ConcurrentMixedHitMissTransplantLoadStaysBitwise) {
  const behavior::Scenario base = make_scenario(8201, 12, 4.0, 1.5);
  const std::vector<Instance> instances = {
      wrap(base),
      wrap(perturb_target(base, 1, 0.25)),
      wrap(perturb_target(base, 3, 0.5)),
      wrap(make_scenario(8202, 9, 3.0, 1.0)),  // different compat/shape
  };
  core::SolverSpec spec = spec_for("cubis", instances[0]);
  std::shared_ptr<const core::DefenderSolver> solver =
      core::make_solver(spec);

  std::vector<std::uint64_t> want;
  for (const Instance& inst : instances) {
    want.push_back(
        digest(solver->solve({*inst.game, *inst.bounds})));
  }

  SolveEngine eng(solver,
                  cache_options(CacheMode::kTransplant, spec,
                                /*workers=*/4, /*entries=*/8));
  constexpr int kJobs = 48;
  std::vector<std::future<JobOutcome>> futures;
  futures.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    futures.push_back(
        eng.submit(job_for(instances[j % instances.size()])));
  }
  for (int j = 0; j < kJobs; ++j) {
    JobOutcome out = futures[static_cast<std::size_t>(j)].get();
    ASSERT_EQ(out.status, JobStatus::kCompleted) << out.error;
    EXPECT_EQ(digest(out.solution), want[j % instances.size()])
        << "job " << j;
  }
  const CacheStats st = eng.cache()->stats();
  eng.shutdown();
  EXPECT_EQ(st.hits + st.misses, kJobs);
  EXPECT_GT(st.hits, 0) << "48 jobs over 4 scenarios must repeat";
}

// ---------------------------------------------------------------------------
// Seed construction: only bitwise-equal per-target blocks are adoptable,
// and a seed with nothing to adopt is not offered at all.
TEST(SolveCache, MakeTransplantSeedAdoptsBitwiseEqualBlocksOnly) {
  core::Fingerprint fp;
  fp.digest = 0xD1;
  fp.compat = 0xC0;
  fp.blocks.assign(3 * core::kFingerprintBlockDoubles, 1.5);

  auto donor = std::make_shared<core::TransplantDonor>();
  donor->compat = fp.compat;
  donor->blocks = fp.blocks;
  donor->blocks[core::kFingerprintBlockDoubles + 2] = 2.0;  // target 1

  const auto seed = make_transplant_seed(donor, fp);
  ASSERT_NE(seed, nullptr);
  ASSERT_EQ(seed->adopt.size(), 3u);
  EXPECT_EQ(seed->adopt[0], 1);
  EXPECT_EQ(seed->adopt[1], 0);
  EXPECT_EQ(seed->adopt[2], 1);

  EXPECT_EQ(make_transplant_seed(nullptr, fp), nullptr);

  auto mismatched = std::make_shared<core::TransplantDonor>();
  mismatched->compat = fp.compat;
  mismatched->blocks.assign(2 * core::kFingerprintBlockDoubles, 1.5);
  EXPECT_EQ(make_transplant_seed(mismatched, fp), nullptr)
      << "shape mismatch cannot be adopted";

  auto alien = std::make_shared<core::TransplantDonor>();
  alien->compat = fp.compat;
  alien->blocks.assign(3 * core::kFingerprintBlockDoubles, 9.0);
  EXPECT_EQ(make_transplant_seed(alien, fp), nullptr)
      << "a seed that repairs every target saves nothing";
}

TEST(SolveCache, ParseCacheModeRoundTrips) {
  CacheMode mode = CacheMode::kTransplant;
  EXPECT_TRUE(parse_cache_mode("off", mode));
  EXPECT_EQ(mode, CacheMode::kOff);
  EXPECT_TRUE(parse_cache_mode("exact", mode));
  EXPECT_EQ(mode, CacheMode::kExact);
  EXPECT_TRUE(parse_cache_mode("transplant", mode));
  EXPECT_EQ(mode, CacheMode::kTransplant);
  EXPECT_FALSE(parse_cache_mode("lru", mode));
  EXPECT_FALSE(parse_cache_mode("", mode));
  for (CacheMode m :
       {CacheMode::kOff, CacheMode::kExact, CacheMode::kTransplant}) {
    CacheMode back = CacheMode::kOff;
    ASSERT_TRUE(parse_cache_mode(to_string(m), back));
    EXPECT_EQ(back, m);
  }
}

// ---------------------------------------------------------------------------
// Eviction determinism golden: a scripted hit/miss/evict sequence against
// a 3-entry single-shard LRU must reproduce a pinned /cachez + counter
// trace exactly.  Regenerate after an INTENTIONAL policy change with
//
//   CUBISG_GOLDEN_REGEN=1 ./build/tests/test_solve_cache
core::Fingerprint synth_fp(std::uint64_t id) {
  core::Fingerprint fp;
  fp.digest = id;
  fp.compat = 0xC0;
  fp.blocks.assign(core::kFingerprintBlockDoubles,
                   static_cast<double>(id));
  return fp;
}

core::DefenderSolution synth_solution(double v) {
  core::DefenderSolution sol;
  sol.status = SolverStatus::kOptimal;
  sol.worst_case_utility = v;
  sol.lb = v;
  sol.ub = v;
  sol.strategy = {v};
  return sol;
}

TEST(SolveCache, EvictionTraceMatchesGolden) {
  SolveCache cache(CacheMode::kExact, /*capacity=*/3, /*shards=*/1);
  std::ostringstream trace;
  const auto step = [&](const char* what) {
    trace << what << ": " << cache.status_json();
  };
  core::DefenderSolution out;

  step("start");
  for (std::uint64_t id : {1, 2, 3}) {
    cache.insert(synth_fp(id), synth_solution(static_cast<double>(id)),
                 nullptr);
  }
  step("insert 1,2,3");
  EXPECT_TRUE(cache.lookup_exact(synth_fp(1), out));  // 1 now most recent
  EXPECT_EQ(out.worst_case_utility, 1.0);
  step("hit 1");
  cache.insert(synth_fp(4), synth_solution(4.0), nullptr);  // evicts 2
  step("insert 4 evicts lru 2");
  EXPECT_FALSE(cache.lookup_exact(synth_fp(2), out));
  step("miss 2");
  EXPECT_TRUE(cache.lookup_exact(synth_fp(3), out));
  EXPECT_EQ(out.worst_case_utility, 3.0);
  step("hit 3");
  cache.insert(synth_fp(3), synth_solution(3.0), nullptr);  // refresh only
  step("reinsert 3 refreshes");
  cache.insert(synth_fp(5), synth_solution(5.0), nullptr);  // evicts 1
  step("insert 5 evicts lru 1");
  EXPECT_FALSE(cache.lookup_exact(synth_fp(1), out));
  EXPECT_TRUE(cache.lookup_exact(synth_fp(4), out));
  step("miss 1 hit 4");
  // A digest collision with different content must read as a miss, never
  // serve the colliding entry.
  core::Fingerprint collider = synth_fp(5);
  collider.blocks[0] += 1.0;
  EXPECT_FALSE(cache.lookup_exact(collider, out));
  step("collision miss");

  const std::string path =
      std::string(CUBISG_GOLDEN_DIR) + "/cache_eviction_trace.txt";
  if (std::getenv("CUBISG_GOLDEN_REGEN") != nullptr) {
    std::ofstream rewrite(path);
    ASSERT_TRUE(rewrite.good()) << "cannot rewrite " << path;
    rewrite << trace.str();
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with CUBISG_GOLDEN_REGEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(trace.str(), want.str());
}

}  // namespace
}  // namespace cubisg::engine

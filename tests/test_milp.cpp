// Unit and property tests for the branch-and-bound MILP solver.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lp/model.hpp"
#include "milp/branch_and_bound.hpp"
#include "brute_force.hpp"

namespace cubisg::milp {
namespace {

using lp::kInf;
using lp::Model;
using lp::Objective;
using lp::Sense;
using cubisg::testing::brute_force_milp;

TEST(Milp, KnapsackSmall) {
  // max 8a + 11b + 6c + 4d st 5a + 7b + 4c + 3d <= 14, binary.
  // Optimum: a=0,b=1,c=1,d=1 -> 21.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const double value[] = {8, 11, 6, 4};
  const double weight[] = {5, 7, 4, 3};
  int r = m.add_row("cap", Sense::kLe, 14.0);
  for (int j = 0; j < 4; ++j) {
    int col = m.add_col("b" + std::to_string(j), 0.0, 1.0, value[j]);
    m.set_integer(col);
    m.set_coeff(r, col, weight[j]);
  }
  MilpSolution s = solve_milp(m);
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  EXPECT_NEAR(s.objective, 21.0, 1e-8);
  EXPECT_NEAR(s.x[0], 0.0, 1e-6);
  EXPECT_NEAR(s.x[1], 1.0, 1e-6);
  EXPECT_NEAR(s.x[2], 1.0, 1e-6);
  EXPECT_NEAR(s.x[3], 1.0, 1e-6);
}

TEST(Milp, MixedIntegerContinuous) {
  // max x + 10y st x + 5y <= 10, x in [0, 8] continuous, y binary.
  // y=1 -> x <= 5 -> obj 15; y=0 -> x=8 -> 8.  Optimum 15.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_col("x", 0.0, 8.0, 1.0);
  const int y = m.add_col("y", 0.0, 1.0, 10.0);
  m.set_integer(y);
  int r = m.add_row("r", Sense::kLe, 10.0);
  m.set_coeff(r, x, 1.0);
  m.set_coeff(r, y, 5.0);
  MilpSolution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 15.0, 1e-8);
  EXPECT_NEAR(s.x[y], 1.0, 1e-6);
  EXPECT_NEAR(s.x[x], 5.0, 1e-6);
}

TEST(Milp, GeneralIntegerVariables) {
  // max 3x + 2y, x,y integer in [0,5], 2x + y <= 7.
  // Candidates: x=3,y=1 -> 11; x=2,y=3 -> 12; x=1,y=5 -> 13. Optimum 13.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_col("x", 0.0, 5.0, 3.0);
  const int y = m.add_col("y", 0.0, 5.0, 2.0);
  m.set_integer(x);
  m.set_integer(y);
  int r = m.add_row("r", Sense::kLe, 7.0);
  m.set_coeff(r, x, 2.0);
  m.set_coeff(r, y, 1.0);
  MilpSolution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 13.0, 1e-8);
}

TEST(Milp, InfeasibleInteger) {
  // x binary, 0.4 <= x <= 0.6 after row restrictions: no integer point.
  Model m;
  const int x = m.add_col("x", 0.0, 1.0, 1.0);
  m.set_integer(x);
  (void)x;
  int r0 = m.add_row("ge", Sense::kGe, 0.4);
  m.set_coeff(r0, x, 1.0);
  int r1 = m.add_row("le", Sense::kLe, 0.6);
  m.set_coeff(r1, x, 1.0);
  MilpSolution s = solve_milp(m);
  EXPECT_EQ(s.status, SolverStatus::kInfeasible);
  EXPECT_FALSE(s.has_solution());
}

TEST(Milp, PureLpPassthrough) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_col("x", 0.0, 2.5, 1.0);
  (void)x;
  MilpSolution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.5, 1e-9);
  EXPECT_EQ(s.nodes, 1);
}

TEST(Milp, SignQueryPositive) {
  // max of knapsack is 21; ask "is optimum >= 5?" -> early positive with a
  // witness solution.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  int r = m.add_row("cap", Sense::kLe, 14.0);
  const double value[] = {8, 11, 6, 4};
  const double weight[] = {5, 7, 4, 3};
  for (int j = 0; j < 4; ++j) {
    int col = m.add_col("b" + std::to_string(j), 0.0, 1.0, value[j]);
    m.set_integer(col);
    m.set_coeff(r, col, weight[j]);
  }
  MilpOptions opt;
  opt.sign_threshold = 5.0;
  MilpSolution s = solve_milp(m, opt);
  EXPECT_EQ(s.status, SolverStatus::kEarlyPositive);
  ASSERT_TRUE(s.has_solution());
  EXPECT_GE(m.objective_value(s.x), 5.0 - 1e-9);
  EXPECT_LE(m.max_violation(s.x), 1e-7);
}

TEST(Milp, SignQueryNegative) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  int r = m.add_row("cap", Sense::kLe, 14.0);
  const double value[] = {8, 11, 6, 4};
  const double weight[] = {5, 7, 4, 3};
  for (int j = 0; j < 4; ++j) {
    int col = m.add_col("b" + std::to_string(j), 0.0, 1.0, value[j]);
    m.set_integer(col);
    m.set_coeff(r, col, weight[j]);
  }
  MilpOptions opt;
  opt.sign_threshold = 1000.0;  // unreachable
  MilpSolution s = solve_milp(m, opt);
  EXPECT_EQ(s.status, SolverStatus::kEarlyNegative);
}

TEST(Milp, WarmStartSeedsIncumbent) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  int r = m.add_row("cap", Sense::kLe, 14.0);
  const double value[] = {8, 11, 6, 4};
  const double weight[] = {5, 7, 4, 3};
  for (int j = 0; j < 4; ++j) {
    int col = m.add_col("b" + std::to_string(j), 0.0, 1.0, value[j]);
    m.set_integer(col);
    m.set_coeff(r, col, weight[j]);
  }
  MilpOptions opt;
  opt.warm_start = std::vector<double>{0.0, 1.0, 1.0, 1.0};  // the optimum
  opt.sign_threshold = 21.0;
  MilpSolution s = solve_milp(m, opt);
  // The warm start already certifies >= 21: zero nodes required.
  EXPECT_EQ(s.status, SolverStatus::kEarlyPositive);
  EXPECT_EQ(s.nodes, 0);
}

TEST(Milp, NodeLimitReported) {
  // A knapsack sized so the proof takes more than one node.
  Rng rng(99);
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  int r = m.add_row("cap", Sense::kLe, 25.0);
  for (int j = 0; j < 16; ++j) {
    int col = m.add_col("b" + std::to_string(j), 0.0, 1.0,
                        rng.uniform(1.0, 10.0));
    m.set_integer(col);
    m.set_coeff(r, col, rng.uniform(1.0, 10.0));
  }
  MilpOptions opt;
  opt.max_nodes = 2;
  MilpSolution s = solve_milp(m, opt);
  EXPECT_EQ(s.status, SolverStatus::kIterLimit);
  // The bound must still be a valid upper bound on any feasible solution.
  EXPECT_GE(s.best_bound, s.has_solution() ? s.objective : 0.0);
}

TEST(Milp, ParallelWorkersMatchSequentialOptimum) {
  Rng rng(421);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 10));
    Model m;
    m.set_objective_sense(Objective::kMaximize);
    int r = m.add_row("cap", Sense::kLe, n / 2.5);
    for (int j = 0; j < n; ++j) {
      int col = m.add_col("b" + std::to_string(j), 0.0, 1.0,
                          rng.uniform(0.5, 3.0));
      m.set_integer(col);
      m.set_coeff(r, col, rng.uniform(0.2, 1.0));
    }
    MilpSolution seq = solve_milp(m);
    MilpOptions popt;
    popt.num_workers = 4;
    MilpSolution par = solve_milp(m, popt);
    ASSERT_TRUE(seq.optimal()) << trial;
    ASSERT_TRUE(par.optimal()) << trial << " " << to_string(par.status);
    EXPECT_NEAR(seq.objective, par.objective, 1e-7) << "trial " << trial;
    EXPECT_LE(m.max_violation(par.x), 1e-7);
  }
}

TEST(Milp, ParallelSignQueriesAgree) {
  Rng rng(422);
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  int r = m.add_row("cap", Sense::kLe, 3.0);
  for (int j = 0; j < 10; ++j) {
    int col = m.add_col("b" + std::to_string(j), 0.0, 1.0,
                        rng.uniform(0.5, 2.0));
    m.set_integer(col);
    m.set_coeff(r, col, rng.uniform(0.3, 1.0));
  }
  MilpSolution base = solve_milp(m);
  ASSERT_TRUE(base.optimal());
  for (double delta : {-1.0, 1.0}) {
    MilpOptions opt;
    opt.num_workers = 3;
    opt.sign_threshold = base.objective + delta;
    MilpSolution s = solve_milp(m, opt);
    if (delta < 0) {
      EXPECT_EQ(s.status, SolverStatus::kEarlyPositive);
      ASSERT_TRUE(s.has_solution());
      EXPECT_GE(m.objective_value(s.x), *opt.sign_threshold - 1e-9);
    } else {
      EXPECT_EQ(s.status, SolverStatus::kEarlyNegative);
    }
  }
}

TEST(Milp, ParallelInfeasibleDetected) {
  Model m;
  const int x = m.add_col("x", 0.0, 1.0, 1.0);
  m.set_integer(x);
  int r0 = m.add_row("ge", Sense::kGe, 0.4);
  m.set_coeff(r0, x, 1.0);
  int r1 = m.add_row("le", Sense::kLe, 0.6);
  m.set_coeff(r1, x, 1.0);
  MilpOptions opt;
  opt.num_workers = 3;
  EXPECT_EQ(solve_milp(m, opt).status, SolverStatus::kInfeasible);
}

// ---- randomized cross-check against exhaustive enumeration ---------------

struct RandomMilpCase {
  std::uint64_t seed;
};

class MilpRandomTest : public ::testing::TestWithParam<RandomMilpCase> {};

TEST_P(MilpRandomTest, MatchesExhaustive) {
  Rng rng(GetParam().seed ^ 0xBEEF);
  for (int trial = 0; trial < 25; ++trial) {
    const int n_bin = static_cast<int>(rng.uniform_int(1, 5));
    const int n_cont = static_cast<int>(rng.uniform_int(0, 2));
    const int rows = static_cast<int>(rng.uniform_int(1, 3));
    Model m;
    m.set_objective_sense(rng.uniform() < 0.5 ? Objective::kMinimize
                                              : Objective::kMaximize);
    for (int j = 0; j < n_bin; ++j) {
      int col = m.add_col("b" + std::to_string(j), 0.0, 1.0,
                          rng.uniform(-3.0, 3.0));
      m.set_integer(col);
    }
    for (int j = 0; j < n_cont; ++j) {
      const double lo = rng.uniform(-2.0, 0.0);
      m.add_col("x" + std::to_string(j), lo, lo + rng.uniform(0.5, 4.0),
                rng.uniform(-3.0, 3.0));
    }
    for (int r = 0; r < rows; ++r) {
      const double pick = rng.uniform();
      const Sense sense = pick < 0.45   ? Sense::kLe
                          : pick < 0.9 ? Sense::kGe
                                       : Sense::kEq;
      int row = m.add_row("r" + std::to_string(r), sense,
                          rng.uniform(-3.0, 3.0));
      for (int j = 0; j < m.num_cols(); ++j) {
        if (rng.uniform() < 0.8) {
          m.set_coeff(row, j, rng.uniform(-2.0, 2.0));
        }
      }
    }

    MilpSolution s = solve_milp(m);
    std::optional<double> ref = brute_force_milp(m);
    if (!ref) {
      EXPECT_EQ(s.status, SolverStatus::kInfeasible) << "trial " << trial;
      continue;
    }
    ASSERT_TRUE(s.optimal())
        << "trial " << trial << ": " << to_string(s.status);
    EXPECT_NEAR(s.objective, *ref, 1e-6) << "trial " << trial;
    EXPECT_LE(m.max_violation(s.x), 1e-7);
    for (int j = 0; j < m.num_cols(); ++j) {
      if (m.col_is_integer(j)) {
        EXPECT_NEAR(s.x[j], std::round(s.x[j]), 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MilpRandomTest,
    ::testing::Values(RandomMilpCase{11}, RandomMilpCase{12},
                      RandomMilpCase{13}, RandomMilpCase{14},
                      RandomMilpCase{15}, RandomMilpCase{16}),
    [](const ::testing::TestParamInfo<RandomMilpCase>& pinfo) {
      return "seed" + std::to_string(pinfo.param.seed);
    });

}  // namespace
}  // namespace cubisg::milp
